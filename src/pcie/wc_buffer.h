// Write-combining buffer model.
//
// ccNVMe maps the PMR with ioremap_wc and relies on the CPU's write-combining
// buffers to coalesce consecutive stores into one PCIe burst (Figure 4(a)).
// This class models the timing and traffic of that mechanism:
//
//   Store()            - stores land in the WC buffer (cheap, CPU-only)
//   FlushNonPersistent - the buffered burst is issued as ONE posted MMIO
//   FlushPersistent    - clflush+mfence over the dirty lines, the burst, and
//                        the zero-length read that guarantees the writes
//                        reached the PMR (steps 2+3 of Figure 4(a))
//
// The transaction-aware MMIO technique (§4.3) is expressed by *when* the
// ccNVMe driver calls the flush: once per transaction instead of once per
// request.
#ifndef SRC_PCIE_WC_BUFFER_H_
#define SRC_PCIE_WC_BUFFER_H_

#include <cstdint>

#include "src/pcie/pcie_link.h"

namespace ccnvme {

class WcBuffer {
 public:
  // |capacity_bytes| models the CPU's finite set of WC line buffers: storing
  // past it evicts the oldest lines as an early posted burst (they reach the
  // device, but are not guaranteed persistent until the next FlushPersistent
  // fences them). 0 = unlimited, the default, which keeps the traffic counts
  // of transaction-aware MMIO exactly one burst per flush.
  explicit WcBuffer(PcieLink* link, uint64_t capacity_bytes = 0)
      : link_(link), capacity_bytes_(capacity_bytes) {}

  // CPU store of |bytes| into the WC-mapped region.
  void Store(uint64_t bytes) {
    link_->CpuStoreToWc(bytes);
    pending_bytes_ += bytes;
    if (capacity_bytes_ != 0 && pending_bytes_ > capacity_bytes_) {
      const uint64_t excess = pending_bytes_ - capacity_bytes_;
      link_->MmioWrite(excess);
      evicted_bytes_ += excess;
      unfenced_evictions_ = true;
      pending_bytes_ = capacity_bytes_;
    }
  }

  // Lets the buffered burst go out as a single posted MMIO write.
  void FlushNonPersistent() {
    if (pending_bytes_ == 0) {
      return;
    }
    link_->MmioWrite(pending_bytes_);
    pending_bytes_ = 0;
  }

  // Durably flushes: clflush+mfence, the combined burst, then the
  // zero-length read fence. On return the stored bytes are persistent in
  // the PMR — including any lines an earlier capacity eviction already
  // pushed out as posted writes (the read fence is what pins those down).
  void FlushPersistent() {
    if (pending_bytes_ == 0 && !unfenced_evictions_) {
      return;
    }
    if (pending_bytes_ != 0) {
      link_->CpuFlushLines(pending_bytes_);
      link_->MmioWrite(pending_bytes_);
    }
    link_->MmioReadFence(0);
    pending_bytes_ = 0;
    unfenced_evictions_ = false;
  }

  // Drops the buffered (not yet issued) stores without any bus traffic.
  // Used when an open transaction is aborted: its staged-but-unrung SQEs
  // must never form a burst.
  void Discard() {
    pending_bytes_ = 0;
    unfenced_evictions_ = false;
  }

  uint64_t pending_bytes() const { return pending_bytes_; }
  // Total bytes pushed out early by capacity pressure.
  uint64_t evicted_bytes() const { return evicted_bytes_; }
  // True when evicted lines have not yet been pinned by a persistent fence.
  bool has_unfenced_evictions() const { return unfenced_evictions_; }

 private:
  PcieLink* link_;
  uint64_t capacity_bytes_;
  uint64_t pending_bytes_ = 0;
  uint64_t evicted_bytes_ = 0;
  bool unfenced_evictions_ = false;
};

}  // namespace ccnvme

#endif  // SRC_PCIE_WC_BUFFER_H_

// Write-combining buffer model.
//
// ccNVMe maps the PMR with ioremap_wc and relies on the CPU's write-combining
// buffers to coalesce consecutive stores into one PCIe burst (Figure 4(a)).
// This class models the timing and traffic of that mechanism:
//
//   Store()            - stores land in the WC buffer (cheap, CPU-only)
//   FlushNonPersistent - the buffered burst is issued as ONE posted MMIO
//   FlushPersistent    - clflush+mfence over the dirty lines, the burst, and
//                        the zero-length read that guarantees the writes
//                        reached the PMR (steps 2+3 of Figure 4(a))
//
// The transaction-aware MMIO technique (§4.3) is expressed by *when* the
// ccNVMe driver calls the flush: once per transaction instead of once per
// request.
#ifndef SRC_PCIE_WC_BUFFER_H_
#define SRC_PCIE_WC_BUFFER_H_

#include <cstdint>

#include "src/pcie/pcie_link.h"

namespace ccnvme {

class WcBuffer {
 public:
  explicit WcBuffer(PcieLink* link) : link_(link) {}

  // CPU store of |bytes| into the WC-mapped region.
  void Store(uint64_t bytes) {
    link_->CpuStoreToWc(bytes);
    pending_bytes_ += bytes;
  }

  // Lets the buffered burst go out as a single posted MMIO write.
  void FlushNonPersistent() {
    if (pending_bytes_ == 0) {
      return;
    }
    link_->MmioWrite(pending_bytes_);
    pending_bytes_ = 0;
  }

  // Durably flushes: clflush+mfence, the combined burst, then the
  // zero-length read fence. On return the stored bytes are persistent in
  // the PMR.
  void FlushPersistent() {
    if (pending_bytes_ == 0) {
      return;
    }
    link_->CpuFlushLines(pending_bytes_);
    link_->MmioWrite(pending_bytes_);
    link_->MmioReadFence(0);
    pending_bytes_ = 0;
  }

  uint64_t pending_bytes() const { return pending_bytes_; }

 private:
  PcieLink* link_;
  uint64_t pending_bytes_ = 0;
};

}  // namespace ccnvme

#endif  // SRC_PCIE_WC_BUFFER_H_

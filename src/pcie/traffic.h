// PCIe traffic accounting.
//
// Table 1 of the paper compares systems by the number of PCIe-crossing
// operations needed to make a transaction crash-consistent: MMIOs, DMAs of
// queue entries, 4 KB block I/Os and interrupt requests. Every model in this
// repository increments these counters at the exact point the corresponding
// TLP would cross the link, so the Table 1 bench can read them back.
#ifndef SRC_PCIE_TRAFFIC_H_
#define SRC_PCIE_TRAFFIC_H_

#include <cstdint>
#include <string>

namespace ccnvme {

struct TrafficStats {
  // Host -> device programmed I/O. A write-combined burst counts as one
  // MMIO write regardless of payload size; each doorbell ring is one write.
  uint64_t mmio_writes = 0;
  uint64_t mmio_write_bytes = 0;
  // Non-posted reads (ccNVMe's zero-length flushing read and PMR loads).
  uint64_t mmio_reads = 0;
  // Device-initiated transfers of *queue entries* over PCIe: SQE fetches
  // from host memory and CQE posts to host memory. Fetches from the PMR
  // P-SQ are device-internal and deliberately NOT counted here.
  uint64_t dma_queue_ops = 0;
  uint64_t dma_queue_bytes = 0;
  // Data block transfers (the paper's "Block I/O" column).
  uint64_t block_ios = 0;
  uint64_t block_io_bytes = 0;
  // MSI-X interrupts delivered to the host.
  uint64_t irqs = 0;

  TrafficStats operator-(const TrafficStats& other) const {
    TrafficStats d;
    d.mmio_writes = mmio_writes - other.mmio_writes;
    d.mmio_write_bytes = mmio_write_bytes - other.mmio_write_bytes;
    d.mmio_reads = mmio_reads - other.mmio_reads;
    d.dma_queue_ops = dma_queue_ops - other.dma_queue_ops;
    d.dma_queue_bytes = dma_queue_bytes - other.dma_queue_bytes;
    d.block_ios = block_ios - other.block_ios;
    d.block_io_bytes = block_io_bytes - other.block_io_bytes;
    d.irqs = irqs - other.irqs;
    return d;
  }

  std::string ToString() const;
};

}  // namespace ccnvme

#endif  // SRC_PCIE_TRAFFIC_H_

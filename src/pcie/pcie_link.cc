#include "src/pcie/pcie_link.h"

#include <algorithm>
#include <cstdio>

#include "src/metrics/metrics.h"
#include "src/trace/tracer.h"

namespace ccnvme {

std::string TrafficStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "mmio_w=%llu mmio_r=%llu dmaQ=%llu blkio=%llu irq=%llu",
                static_cast<unsigned long long>(mmio_writes),
                static_cast<unsigned long long>(mmio_reads),
                static_cast<unsigned long long>(dma_queue_ops),
                static_cast<unsigned long long>(block_ios),
                static_cast<unsigned long long>(irqs));
  return buf;
}

PcieLink::PcieLink(Simulator* sim, const PcieConfig& config)
    : sim_(sim),
      config_(config),
      down_(sim, "pcie_down", config.downstream_bytes_per_sec),
      up_(sim, "pcie_up", config.upstream_bytes_per_sec) {}

void PcieLink::CpuStoreToWc(uint64_t bytes) {
  Simulator::Sleep(CacheLines(bytes) * config_.store_per_line_ns);
}

void PcieLink::CpuFlushLines(uint64_t bytes) {
  Simulator::Sleep(CacheLines(bytes) * config_.clflush_per_line_ns);
}

void PcieLink::MmioWrite(uint64_t bytes) {
  traffic_.mmio_writes++;
  traffic_.mmio_write_bytes += bytes;
  if (Tracer* t = sim_->tracer()) {
    t->Instant(TracePoint::kMmioWrite, bytes);
    t->AddCounter(TraceCounter::kMmioWrites);
    t->AddCounter(TraceCounter::kMmioWriteBytes, bytes);
  }
  // CPU-side: fixed TLP issue cost. The burst then drains through the WC
  // engine at mmio_write_bytes_per_sec without stalling the CPU (posted).
  const uint64_t drain_ns = config_.mmio_write_bytes_per_sec == 0
                                ? 0
                                : static_cast<uint64_t>(static_cast<double>(bytes) * 1e9 /
                                                        static_cast<double>(
                                                            config_.mmio_write_bytes_per_sec));
  const uint64_t now = sim_->now();
  const uint64_t start = std::max(now, mmio_drain_at_ns_);
  mmio_drain_at_ns_ = start + drain_ns;
  uint64_t stall = config_.mmio_write_overhead_ns;
  if (mmio_drain_at_ns_ > now + config_.max_mmio_backlog_ns) {
    // WC buffers full: the CPU stalls until the backlog drains below cap.
    stall += mmio_drain_at_ns_ - now - config_.max_mmio_backlog_ns;
  }
  Simulator::Sleep(stall);
  if (Tracer* t = sim_->tracer()) {
    // Only the stall beyond the fixed TLP-issue cost is a causal wait (the
    // CPU parked behind the WC-buffer drain backlog).
    t->WaitEdgeEvent(WaitEdge::kWcDrain, now + config_.mmio_write_overhead_ns, now + stall,
                     bytes);
  }
}

void PcieLink::MmioReadFence(uint64_t bytes) {
  traffic_.mmio_reads++;
  Tracer* tracer = sim_->tracer();
  if (tracer != nullptr) tracer->AddCounter(TraceCounter::kMmioReads);
  ScopedSpan span(tracer, TracePoint::kWcFlush, bytes);
  const uint64_t now = sim_->now();
  // The read must not pass posted writes: wait for the drain horizon, then
  // pay a round trip plus payload return time.
  uint64_t wait = mmio_drain_at_ns_ > now ? mmio_drain_at_ns_ - now : 0;
  wait += config_.read_rtt_ns;
  if (bytes > 0 && config_.mmio_read_bytes_per_sec > 0) {
    wait += static_cast<uint64_t>(static_cast<double>(bytes) * 1e9 /
                                  static_cast<double>(config_.mmio_read_bytes_per_sec));
  }
  const uint64_t drain_horizon = mmio_drain_at_ns_;
  Simulator::Sleep(wait);
  if (tracer != nullptr && drain_horizon > now) {
    // Portion of the fence spent held behind not-yet-drained posted writes
    // (ordering wait), as opposed to the unavoidable read RTT.
    tracer->WaitEdgeEvent(WaitEdge::kPostedOrder, now, drain_horizon, bytes);
  }
  if (Metrics* m = sim_->metrics()) {
    // Non-posted reads must not pass posted writes: by the time the fence
    // returns, every posted MMIO burst issued before it must have drained.
    m->monitors().OnReadFence(drain_horizon);
  }
}

void PcieLink::DmaQueueFetch(uint64_t bytes) {
  traffic_.dma_queue_ops++;
  traffic_.dma_queue_bytes += bytes;
  Tracer* tracer = sim_->tracer();
  if (tracer != nullptr) {
    tracer->AddCounter(TraceCounter::kDmaQueueOps);
    tracer->AddCounter(TraceCounter::kDmaQueueBytes, bytes);
  }
  ScopedSpan span(tracer, TracePoint::kDmaQueue, bytes);
  Simulator::Sleep(config_.dma_setup_ns);
  up_.Transfer(bytes);
}

void PcieLink::DmaQueuePost(uint64_t bytes) {
  traffic_.dma_queue_ops++;
  traffic_.dma_queue_bytes += bytes;
  Tracer* tracer = sim_->tracer();
  if (tracer != nullptr) {
    tracer->AddCounter(TraceCounter::kDmaQueueOps);
    tracer->AddCounter(TraceCounter::kDmaQueueBytes, bytes);
  }
  ScopedSpan span(tracer, TracePoint::kDmaQueue, bytes);
  Simulator::Sleep(config_.dma_setup_ns);
  up_.Transfer(bytes);
}

void PcieLink::DmaData(uint64_t bytes, bool to_device) {
  traffic_.block_ios++;
  traffic_.block_io_bytes += bytes;
  Tracer* tracer = sim_->tracer();
  if (tracer != nullptr) {
    tracer->AddCounter(TraceCounter::kBlockIos);
    tracer->AddCounter(TraceCounter::kBlockIoBytes, bytes);
  }
  ScopedSpan span(tracer, TracePoint::kDmaData, bytes);
  Simulator::Sleep(config_.dma_setup_ns);
  if (to_device) {
    down_.Transfer(bytes);
  } else {
    up_.Transfer(bytes);
  }
}

void PcieLink::RaiseIrq(std::function<void()> handler) {
  traffic_.irqs++;
  if (Tracer* t = sim_->tracer()) {
    t->Instant(TracePoint::kMsix);
    t->AddCounter(TraceCounter::kIrqs);
  }
  sim_->Schedule(config_.irq_delivery_ns, std::move(handler));
}

}  // namespace ccnvme

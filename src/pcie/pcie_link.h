// PCIe link model.
//
// Models the host <-> SSD link as two full-duplex bandwidth pipes plus a
// latency model for programmed I/O:
//   * MMIO writes are *posted*: the CPU pays only the store/WC-drain cost
//     and continues; the payload occupies the downstream pipe
//     asynchronously.
//   * MMIO reads are *non-posted* and, per PCIe ordering (Table 2-39 of the
//     PCIe 3.1a spec), must not pass previously posted writes. ReadFence()
//     therefore waits for the downstream pipe to drain and then pays a full
//     round trip. ccNVMe's persistent-MMIO step 3 is exactly this read.
//   * DMA transfers are device-initiated and occupy the respective pipe for
//     their payload.
//
// Latency constants default to values calibrated against Figure 5 of the
// paper (2 MB PMR, PCIe 3.0 x4). See bench/fig5_pmr.cc.
#ifndef SRC_PCIE_PCIE_LINK_H_
#define SRC_PCIE_PCIE_LINK_H_

#include <cstdint>
#include <string>

#include "src/pcie/traffic.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace ccnvme {

struct PcieConfig {
  // Raw link rate per direction. PCIe 3.0 x4 nets ~3.2 GB/s after encoding
  // and TLP overhead.
  uint64_t downstream_bytes_per_sec = 3'200'000'000ull;
  uint64_t upstream_bytes_per_sec = 3'200'000'000ull;
  // MMIO-write streaming is much slower than DMA: the CPU's WC drain engine
  // tops out near 1 GB/s on this class of hardware (Figure 5's bandwidth
  // plateau for large writes).
  uint64_t mmio_write_bytes_per_sec = 1'100'000'000ull;
  uint64_t mmio_read_bytes_per_sec = 350'000'000ull;
  // Fixed cost of issuing one MMIO write burst (TLP formation, uncore).
  uint64_t mmio_write_overhead_ns = 250;
  // Posted writes are async only up to this much backlog in the WC drain
  // engine; beyond it the stores stall at the drain rate (this is what
  // makes Figure 5's write latency grow linearly for large payloads).
  uint64_t max_mmio_backlog_ns = 2'000;
  // CPU-visible cost of one cache-line store into a WC-mapped region.
  uint64_t store_per_line_ns = 18;
  // clflush of one dirty line plus its share of the mfence. Flushing
  // WC-mapped lines is cheap; the dominant persistence cost is the read
  // fence, which is why write+sync converges to write for large payloads.
  uint64_t clflush_per_line_ns = 10;
  // Round trip of a non-posted read (the persistence fence).
  uint64_t read_rtt_ns = 500;
  // Device-side setup latency per DMA descriptor.
  uint64_t dma_setup_ns = 200;
  // Delivery latency of an MSI-X interrupt.
  uint64_t irq_delivery_ns = 300;
};

class PcieLink {
 public:
  PcieLink(Simulator* sim, const PcieConfig& config);

  // --- Host-side programmed I/O (call from host actors) -----------------

  // Posted MMIO write of |bytes| (one write-combined burst). The caller is
  // charged the CPU-side cost; the wire occupancy is accounted to the
  // downstream pipe asynchronously.
  void MmioWrite(uint64_t bytes);

  // Non-posted read that flushes all previously posted writes (zero-length
  // read usage in ccNVMe) and then completes a round trip. |bytes| may be 0.
  void MmioReadFence(uint64_t bytes);

  // CPU cost of storing |bytes| into a WC-mapped region *without* issuing
  // the burst yet (stores land in the WC buffer).
  void CpuStoreToWc(uint64_t bytes);

  // CPU cost of clflush+mfence over |bytes| of WC/PMR space.
  void CpuFlushLines(uint64_t bytes);

  // --- Device-side DMA (call from device actors) -------------------------

  // Device fetches |bytes| of queue entries from host memory (downstream
  // request, upstream completion; dominated by upstream data return).
  void DmaQueueFetch(uint64_t bytes);
  // Device posts |bytes| of queue entries (CQEs) to host memory.
  void DmaQueuePost(uint64_t bytes);
  // Device moves a data payload; |to_device| true for write data.
  void DmaData(uint64_t bytes, bool to_device);

  // MSI-X: schedules |handler| on the event loop after delivery latency.
  void RaiseIrq(std::function<void()> handler);

  const TrafficStats& traffic() const { return traffic_; }
  void ResetTraffic() { traffic_ = TrafficStats{}; }
  TrafficStats SnapshotTraffic() const { return traffic_; }

  const PcieConfig& config() const { return config_; }
  BandwidthPipe& downstream() { return down_; }
  BandwidthPipe& upstream() { return up_; }

  static uint64_t CacheLines(uint64_t bytes) { return (bytes + 63) / 64; }

 private:
  Simulator* sim_;
  PcieConfig config_;
  BandwidthPipe down_;
  BandwidthPipe up_;
  // Drain horizon for posted MMIO writes (separate from DMA bandwidth: the
  // WC engine is the bottleneck, not the link).
  uint64_t mmio_drain_at_ns_ = 0;
  TrafficStats traffic_;
};

}  // namespace ccnvme

#endif  // SRC_PCIE_PCIE_LINK_H_

#include "src/block/block_layer.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/metrics/metrics.h"
#include "src/trace/tracer.h"

namespace ccnvme {

namespace {
thread_local uint16_t tls_queue = 0;
thread_local bool tls_plugged = false;
}  // namespace

// Per-actor plug list. Keyed by the actor's thread (thread_local), so no
// cross-actor synchronization is needed.
namespace {
thread_local std::vector<BlockLayer::PluggedWrite>* tls_plug_list = nullptr;
}  // namespace

BlockLayer::BlockLayer(Simulator* sim, NvmeDriver* nvme, CcNvmeDriver* cc,
                       const HostCosts& costs)
    : sim_(sim), nvme_(nvme), cc_(cc), costs_(costs) {
  const SsdConfig& ssd = nvme->controller()->ssd().config();
  needs_flush_ = ssd.volatile_cache && !ssd.power_loss_protection;
}

void BlockLayer::BindQueue(uint16_t qid) {
  CCNVME_CHECK_LT(qid, nvme_->num_queues());
  tls_queue = qid;
}

uint16_t BlockLayer::current_queue() const { return tls_queue; }

uint64_t BlockLayer::Record(BioOp op, uint64_t lba, uint32_t flags, uint64_t tx_id,
                            const Buffer* data) {
  if (!recorder_) {
    return 0;
  }
  BioEvent ev;
  ev.op = op;
  ev.seq = next_record_seq_++;
  ev.lba = lba;
  ev.flags = flags;
  ev.tx_id = tx_id;
  if (data != nullptr) {
    ev.data = *data;
  }
  const uint64_t seq = ev.seq;
  recorder_(std::move(ev));
  return seq;
}

void BlockLayer::RecordCompletion(uint64_t seq) {
  if (!recorder_ || seq == 0) {
    return;
  }
  BioEvent ev;
  ev.op = BioOp::kComplete;
  ev.seq = seq;
  recorder_(std::move(ev));
}

NvmeDriver::RequestHandle BlockLayer::DispatchWrite(uint64_t lba, const Buffer* data, bool fua,
                                                    uint32_t flags,
                                                    std::function<void()> on_complete) {
  if (volume_ != nullptr) {
    return volume_->SubmitWrite(tls_queue, lba, data, flags, std::move(on_complete));
  }
  return nvme_->SubmitWrite(tls_queue, lba, data, fua, 0, 0, std::move(on_complete));
}

Status BlockLayer::DispatchFlush() {
  if (volume_ != nullptr) {
    return volume_->Flush(tls_queue);
  }
  return nvme_->Flush(tls_queue);
}

void BlockLayer::RecordTxDurable(uint64_t tx_id) {
  auto it = tx_members_.find(tx_id);
  if (it == tx_members_.end()) {
    return;
  }
  for (uint64_t seq : it->second) {
    RecordCompletion(seq);
  }
  tx_members_.erase(it);
}

void BlockLayer::Plug() {
  CCNVME_CHECK(!tls_plugged) << "nested Plug";
  tls_plugged = true;
  tls_plug_list = new std::vector<PluggedWrite>();
}

void BlockLayer::Unplug() {
  CCNVME_CHECK(tls_plugged) << "Unplug without Plug";
  std::unique_ptr<std::vector<PluggedWrite>> list(tls_plug_list);
  tls_plug_list = nullptr;
  tls_plugged = false;
  if (list->empty()) {
    return;
  }
  std::sort(list->begin(), list->end(),
            [](const PluggedWrite& a, const PluggedWrite& b) { return a.lba < b.lba; });

  size_t i = 0;
  while (i < list->size()) {
    // Find the run of strictly consecutive LBAs starting at i.
    size_t j = i + 1;
    uint64_t next_lba = (*list)[i].lba + (*list)[i].data->size() / kLbaSize;
    while (j < list->size() && (*list)[j].lba == next_lba) {
      next_lba += (*list)[j].data->size() / kLbaSize;
      j++;
    }
    if (j == i + 1) {
      // Nothing to merge: dispatch as-is, completing the placeholder handle.
      PluggedWrite& w = (*list)[i];
      auto handle = w.handle;
      auto cb = w.on_complete;
      const uint64_t seq = w.record_seq;
      (void)DispatchWrite(w.lba, w.data, false, 0, [this, seq, handle, cb] {
        RecordCompletion(seq);
        if (cb) {
          cb();
        }
        handle->done.Signal();
      });
    } else {
      // Merge [i, j) into one request with a composite payload.
      auto merged = std::make_shared<Buffer>();
      std::vector<NvmeDriver::RequestHandle> handles;
      std::vector<std::function<void()>> callbacks;
      std::vector<uint64_t> seqs;
      for (size_t k = i; k < j; ++k) {
        merged->insert(merged->end(), (*list)[k].data->begin(), (*list)[k].data->end());
        handles.push_back((*list)[k].handle);
        callbacks.push_back((*list)[k].on_complete);
        seqs.push_back((*list)[k].record_seq);
      }
      (void)DispatchWrite(
          (*list)[i].lba, merged.get(), false, 0,
          [this, merged, handles, callbacks, seqs] {
            for (size_t k = 0; k < handles.size(); ++k) {
              RecordCompletion(seqs[k]);
              if (callbacks[k]) {
                callbacks[k]();
              }
              handles[k]->done.Signal();
            }
          });
    }
    i = j;
  }
}

NvmeDriver::RequestHandle BlockLayer::SubmitWrite(uint64_t lba, const Buffer* data,
                                                  uint32_t flags,
                                                  std::function<void()> on_complete) {
  CCNVME_CHECK(data != nullptr);
  Simulator::Sleep(costs_.block_layer_submit_ns);
  if (Tracer* t = sim_->tracer()) t->Instant(TracePoint::kBioSubmit, lba);
  if (tls_plugged && flags == 0) {
    // Batched: hand back a placeholder handle completed at merge dispatch.
    PluggedWrite w;
    w.record_seq = Record(BioOp::kWrite, lba, flags, 0, data);
    w.lba = lba;
    w.data = data;
    w.handle = std::make_shared<NvmeDriver::Request>(sim_);
    w.on_complete = std::move(on_complete);
    tls_plug_list->push_back(w);
    return w.handle;
  }
  if ((flags & kBioPreflush) != 0 && needs_flush_) {
    // PREFLUSH: drain the device cache before this write (the classic
    // journaling ordering point). The flush is its own command. On PLP
    // drives the flag is stripped here, as the real block layer does.
    if (Tracer* t = sim_->tracer()) t->Instant(TracePoint::kBioFlush);
    const uint64_t fseq = Record(BioOp::kFlush, 0, flags, 0, nullptr);
    Status st = DispatchFlush();
    CCNVME_CHECK(st.ok());
    RecordCompletion(fseq);
  }
  const uint64_t seq = Record(BioOp::kWrite, lba, flags, 0, data);
  auto wrapped = [this, seq, cb = std::move(on_complete)] {
    RecordCompletion(seq);
    if (cb) {
      cb();
    }
  };
  return DispatchWrite(lba, data, (flags & kBioFua) != 0, flags, std::move(wrapped));
}

Status BlockLayer::WriteSync(uint64_t lba, const Buffer& data, uint32_t flags) {
  return nvme_->Wait(SubmitWrite(lba, &data, flags));
}

Status BlockLayer::ReadSync(uint64_t lba, uint32_t num_blocks, Buffer* out) {
  Simulator::Sleep(costs_.block_layer_submit_ns);
  if (volume_ != nullptr) {
    return volume_->Read(tls_queue, lba, num_blocks, out);
  }
  return nvme_->Read(tls_queue, lba, num_blocks, out);
}

Status BlockLayer::FlushSync() {
  Simulator::Sleep(costs_.block_layer_submit_ns);
  if (!needs_flush_) {
    return OkStatus();
  }
  if (Tracer* t = sim_->tracer()) t->Instant(TracePoint::kBioFlush);
  const uint64_t seq = Record(BioOp::kFlush, 0, 0, 0, nullptr);
  Status st = DispatchFlush();
  if (st.ok()) {
    RecordCompletion(seq);
  }
  return st;
}

void BlockLayer::SubmitTxWrite(uint64_t tx_id, uint64_t lba, const Buffer* data,
                               std::function<void()> on_complete) {
  CCNVME_CHECK(cc_ != nullptr) << "stack has no ccNVMe extension";
  Simulator::Sleep(costs_.block_layer_submit_ns);
  if (Tracer* t = sim_->tracer()) {
    t->InstantWith(TracePoint::kBioSubmit, {CurrentTraceContext().req_id, tx_id}, lba);
  }
  if (Metrics* m = sim_->metrics()) {
    m->monitors().OnTxMemberStaged(tx_id);
  }
  if (volume_ != nullptr) {
    volume_->SubmitTx(tls_queue, tx_id, lba, data, std::move(on_complete));
    return;
  }
  const uint64_t seq = Record(BioOp::kWrite, lba, kBioTx, tx_id, data);
  if (seq != 0) {
    tx_members_[tx_id].push_back(seq);
  }
  cc_->SubmitTx(tls_queue, tx_id, lba, data, std::move(on_complete));
}

CcNvmeDriver::TxHandle BlockLayer::CommitTx(uint64_t tx_id, uint64_t lba, const Buffer* data,
                                            std::function<void()> on_durable) {
  CCNVME_CHECK(cc_ != nullptr) << "stack has no ccNVMe extension";
  Simulator::Sleep(costs_.block_layer_submit_ns);
  if (Tracer* t = sim_->tracer()) {
    t->InstantWith(TracePoint::kBioSubmit, {CurrentTraceContext().req_id, tx_id}, lba);
  }
  if (Metrics* m = sim_->metrics()) {
    // The commit record closes the transaction: every member block the
    // journal declared must have been staged through SubmitTxWrite by now.
    m->monitors().OnTxCommitRecord(tx_id);
  }
  if (volume_ != nullptr) {
    return volume_->CommitTx(tls_queue, tx_id, lba, data, std::move(on_durable));
  }
  const uint64_t seq = Record(BioOp::kWrite, lba, kBioTx | kBioTxCommit, tx_id, data);
  if (seq != 0) {
    tx_members_[tx_id].push_back(seq);
  }
  auto wrapped = [this, tx_id, cb = std::move(on_durable)] {
    RecordTxDurable(tx_id);
    if (cb) {
      cb();
    }
  };
  return cc_->CommitTx(tls_queue, tx_id, lba, data, std::move(wrapped));
}

void BlockLayer::WaitTxDurable(const CcNvmeDriver::TxHandle& tx) {
  const uint64_t begin = sim_->now();
  tx->durable.Wait();
  if (Tracer* t = sim_->tracer()) {
    t->WaitEdgeWith(WaitEdge::kTxDurable, {CurrentTraceContext().req_id, tx->tx_id},
                    begin, sim_->now());
  }
}

std::vector<CcNvmeDriver::UnfinishedRequest> BlockLayer::RecoveredWindow() const {
  if (volume_ != nullptr) {
    return volume_->RecoveredWindow();
  }
  if (cc_ != nullptr) {
    return cc_->recovered_window();
  }
  return {};
}

}  // namespace ccnvme

// Block/driver event vocabulary shared by the block layer, the ccNVMe
// driver and the crash-test recorder.
//
// A recorded stream interleaves three persistence domains:
//   * media events  — bio submissions (kWrite/kFlush) and their durable
//     completions (kComplete), emitted by the block layer;
//   * PMR events    — MMIO traffic against the SSD's persistent memory
//     region (kPmrWrite/kPmrFence/kPmrDoorbell), emitted by the ccNVMe
//     driver;
//   * NVM events    — CPU stores into the byte-addressable NVM tier and
//     their persist barriers (kNvmWrite/kNvmFence), emitted by the NVM
//     device model (src/nvm).
// The crash-state exploration engine replays a prefix of this stream to
// reconstruct every device state a power cut could leave behind, including
// partially-persisted (torn) writes in both domains.
#ifndef SRC_BLOCK_BIO_EVENT_H_
#define SRC_BLOCK_BIO_EVENT_H_

#include <cstdint>
#include <functional>

#include "src/common/bytes.h"

namespace ccnvme {

enum class BioOp {
  kRead,
  kWrite,
  kFlush,
  kComplete,
  // --- PMR (ccNVMe) events ----------------------------------------------
  // A store into the PMR. With kBioPmrWc the bytes sit in the CPU's
  // write-combining buffer until the next kPmrFence on the same queue and
  // may tear at MMIO-word granularity across a power cut; without it the
  // store is uncached and durable immediately (doorbell/head updates).
  kPmrWrite,
  // clflush+mfence+read fence: all earlier kBioPmrWc stores on this queue
  // are persistent from here on.
  kPmrFence,
  // P-SQDB ring. Doubles as the device-visibility point: the controller
  // fetches and executes commands only after their doorbell, so a REQ_TX
  // write can reach media only if its transaction's doorbell event
  // precedes the crash point.
  kPmrDoorbell,
  // --- NVM (byte-addressable persistent memory) events --------------------
  // A CPU store into the NVM tier: visible to loads immediately, but
  // crash-durable only once a later kNvmFence covers it; until then a power
  // cut may persist any 8-byte-word subset (torn store). |lba| is a byte
  // offset into the NVM region.
  kNvmWrite,
  // clwb+sfence persist barrier: all earlier kNvmWrite stores are
  // persistent from here on. Global — the NVM tier has one cache domain.
  kNvmFence,
};

// Bio flags (subset of the kernel's REQ_*).
inline constexpr uint32_t kBioFua = 1u << 0;       // force unit access
inline constexpr uint32_t kBioPreflush = 1u << 1;  // flush cache before this write
inline constexpr uint32_t kBioTx = 1u << 2;        // ccNVMe: transaction member
inline constexpr uint32_t kBioTxCommit = 1u << 3;  // ccNVMe: commit record
// kPmrWrite only: bytes are write-combining buffered (tearable until the
// next kPmrFence on the same queue).
inline constexpr uint32_t kBioPmrWc = 1u << 8;

struct BioEvent {
  BioOp op;
  uint64_t seq = 0;  // submission sequence; kComplete references this
  uint64_t lba = 0;  // DEVICE-local media block for bios, byte offset for PMR
  uint32_t flags = 0;
  uint64_t tx_id = 0;
  uint16_t qid = 0;     // hardware queue (PMR events)
  uint16_t device = 0;  // member device of a multi-device volume (0 otherwise)
  Buffer data;          // payload copy for write events
};
using BioRecorder = std::function<void(const BioEvent&)>;

}  // namespace ccnvme

#endif  // SRC_BLOCK_BIO_EVENT_H_

// Block layer: the bio abstraction between file systems and drivers.
//
// Mirrors the Linux block layer's role in Figure 3: file systems build bios,
// tag them (REQ_FUA / REQ_PREFLUSH for classic ordering, REQ_TX /
// REQ_TX_COMMIT plus a transaction ID for ccNVMe), and submit them on the
// hardware queue bound to the current core. The layer charges the per-bio
// software cost (Figure 14 shows it at ~1 us) and routes:
//   * ordinary bios        -> the stock NVMe driver
//   * REQ_TX-tagged bios   -> the ccNVMe driver's transactional path
// A recorder hook observes every submission — the CrashMonkey-style tester
// plugs in there.
#ifndef SRC_BLOCK_BLOCK_LAYER_H_
#define SRC_BLOCK_BLOCK_LAYER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/block/bio_event.h"
#include "src/ccnvme/ccnvme_driver.h"
#include "src/common/status.h"
#include "src/driver/nvme_driver.h"
#include "src/volume/volume.h"

namespace ccnvme {

class NvmDevice;

class BlockLayer {
 public:
  // |cc| may be null for stacks without the ccNVMe extension.
  BlockLayer(Simulator* sim, NvmeDriver* nvme, CcNvmeDriver* cc, const HostCosts& costs);

  // Routes all I/O through |volume| instead of the single device drivers.
  // The volume does its own event recording (per-member device), so the
  // block-layer recorder should stay unset in volume mode.
  void set_volume(Volume* volume) { volume_ = volume; }
  bool has_volume() const { return volume_ != nullptr; }
  Volume* volume() { return volume_; }

  // Binds the calling actor to hardware queue |qid| (per-core queues).
  void BindQueue(uint16_t qid);
  uint16_t current_queue() const;

  // --- Ordinary (non-transactional) path --------------------------------

  // Asynchronous write; |data| must outlive completion.
  NvmeDriver::RequestHandle SubmitWrite(uint64_t lba, const Buffer* data, uint32_t flags,
                                        std::function<void()> on_complete = nullptr);

  // --- Plugging / request merging ----------------------------------------
  // Between Plug() and Unplug(), plain writes (flags == 0) on this queue are
  // batched; Unplug() merges runs of consecutive LBAs into single requests
  // before dispatch (Linux's blk-mq plug). Table 1 counts unmerged traffic
  // ("if block merging is disabled"); merging reduces the Block I/O and IRQ
  // columns for sequential patterns like journal writes.
  void Plug();
  void Unplug();
  Status WriteSync(uint64_t lba, const Buffer& data, uint32_t flags = 0);
  Status ReadSync(uint64_t lba, uint32_t num_blocks, Buffer* out);
  Status FlushSync();
  Status Wait(const NvmeDriver::RequestHandle& req) { return nvme_->Wait(req); }

  // --- ccNVMe transactional path -----------------------------------------

  bool has_ccnvme() const { return cc_ != nullptr; }
  CcNvmeDriver* ccnvme() { return cc_; }

  // Stages one atomic write on the current queue's open transaction.
  // |on_complete| fires when this request's CQE arrives.
  void SubmitTxWrite(uint64_t tx_id, uint64_t lba, const Buffer* data,
                     std::function<void()> on_complete = nullptr);
  // Stages the commit record and performs the transaction-aware MMIO flush
  // + doorbell. When this returns the transaction is ATOMIC (MQFS-A point);
  // wait on the returned handle for DURABILITY (MQFS point).
  CcNvmeDriver::TxHandle CommitTx(uint64_t tx_id, uint64_t lba, const Buffer* data,
                                  std::function<void()> on_durable = nullptr);

  // Blocks until the transaction is durable — for a volume-level handle
  // that means durable on EVERY member device. Journals use this instead of
  // reaching for ccnvme()->WaitDurable so they work on both stack shapes.
  void WaitTxDurable(const CcNvmeDriver::TxHandle& tx);

  // The in-doubt window found at driver bring-up: the single device's
  // [P-SQ-head, P-SQDB) window, or the union across all volume members.
  std::vector<CcNvmeDriver::UnfinishedRequest> RecoveredWindow() const;

  // --- NVM tier (NVLog) ---------------------------------------------------
  // The byte-addressable NVM device, when the stack has one. The block
  // layer only carries the pointer (file systems reach it through their
  // block layer the same way they reach the ccNVMe driver); all NVM traffic
  // goes through the device directly, never through bios.
  void set_nvm(NvmDevice* nvm) { nvm_ = nvm; }
  NvmDevice* nvm() { return nvm_; }

  void set_recorder(BioRecorder recorder) { recorder_ = std::move(recorder); }

  // True when the device has a volatile write cache without power-loss
  // protection, i.e. FLUSH/PREFLUSH actually matter. On PLP drives the
  // block layer strips them (the paper observes exactly this on Optane).
  bool NeedsExplicitFlush() const { return needs_flush_; }

  struct PluggedWrite {
    uint64_t lba;
    const Buffer* data;
    uint64_t record_seq = 0;  // recorder seq of the submission event
    NvmeDriver::RequestHandle handle;
    std::function<void()> on_complete;
  };

 private:
  // Single-device or volume dispatch for plain writes / flushes.
  NvmeDriver::RequestHandle DispatchWrite(uint64_t lba, const Buffer* data, bool fua,
                                          uint32_t flags, std::function<void()> on_complete);
  Status DispatchFlush();
  // Returns the submission sequence number of the recorded event.
  uint64_t Record(BioOp op, uint64_t lba, uint32_t flags, uint64_t tx_id, const Buffer* data);
  void RecordCompletion(uint64_t seq);
  void RecordTxDurable(uint64_t tx_id);

  Simulator* sim_;
  NvmeDriver* nvme_;
  CcNvmeDriver* cc_;
  Volume* volume_ = nullptr;
  NvmDevice* nvm_ = nullptr;
  HostCosts costs_;
  BioRecorder recorder_;
  bool needs_flush_ = false;
  uint64_t next_record_seq_ = 1;
  // ccNVMe transaction members awaiting their durable completion record.
  std::map<uint64_t, std::vector<uint64_t>> tx_members_;
};

}  // namespace ccnvme

#endif  // SRC_BLOCK_BLOCK_LAYER_H_

#include "src/jbd2/journal_format.h"

#include "src/common/logging.h"

namespace ccnvme {

namespace {

constexpr size_t kChecksumOffset = kFsBlockSize - 8;

void StampHeader(std::span<uint8_t> out, JournalRecordType type, uint64_t tx_id) {
  std::memset(out.data(), 0, kFsBlockSize);
  PutU32(out, 0, kJournalMagic);
  PutU32(out, 4, static_cast<uint32_t>(type));
  PutU64(out, 8, tx_id);
}

void StampChecksum(std::span<uint8_t> out) {
  PutU64(out, kChecksumOffset, Fnv1a(out.subspan(0, kChecksumOffset)));
}

Status ValidateRecord(std::span<const uint8_t> in) {
  if (in.size() < kFsBlockSize) {
    return InvalidArgument("short journal block");
  }
  if (GetU32(in, 0) != kJournalMagic) {
    return Corruption("bad journal record magic");
  }
  if (GetU64(in, kChecksumOffset) != Fnv1a(in.subspan(0, kChecksumOffset))) {
    return Corruption("journal record checksum mismatch");
  }
  return OkStatus();
}

}  // namespace

void DescriptorBlock::Serialize(std::span<uint8_t> out) const {
  CCNVME_CHECK_LE(entries.size(), kMaxEntries);
  StampHeader(out, JournalRecordType::kDescriptor, tx_id);
  PutU32(out, 16, static_cast<uint32_t>(entries.size()));
  PutU32(out, 20, static_cast<uint32_t>(revoked.size()));
  size_t off = kHeaderSize;
  for (const JournalEntry& e : entries) {
    PutU64(out, off, e.home_lba);
    PutU64(out, off + 8, e.content_checksum);
    off += 16;
  }
  for (BlockNo r : revoked) {
    PutU64(out, off, r);
    off += 8;
  }
  CCNVME_CHECK_LE(off, kChecksumOffset);
  StampChecksum(out);
}

Result<DescriptorBlock> DescriptorBlock::Parse(std::span<const uint8_t> in) {
  CCNVME_RETURN_IF_ERROR(ValidateRecord(in));
  if (GetU32(in, 4) != static_cast<uint32_t>(JournalRecordType::kDescriptor)) {
    return Corruption("not a descriptor block");
  }
  DescriptorBlock d;
  d.tx_id = GetU64(in, 8);
  const uint32_t n = GetU32(in, 16);
  const uint32_t nr = GetU32(in, 20);
  if (n > kMaxEntries || kHeaderSize + 16ull * n + 8ull * nr > kChecksumOffset) {
    return Corruption("descriptor counts out of range");
  }
  size_t off = kHeaderSize;
  for (uint32_t i = 0; i < n; ++i) {
    JournalEntry e;
    e.home_lba = GetU64(in, off);
    e.content_checksum = GetU64(in, off + 8);
    d.entries.push_back(e);
    off += 16;
  }
  for (uint32_t i = 0; i < nr; ++i) {
    d.revoked.push_back(GetU64(in, off));
    off += 8;
  }
  return d;
}

void CommitBlock::Serialize(std::span<uint8_t> out) const {
  StampHeader(out, JournalRecordType::kCommit, tx_id);
  StampChecksum(out);
}

Result<CommitBlock> CommitBlock::Parse(std::span<const uint8_t> in) {
  CCNVME_RETURN_IF_ERROR(ValidateRecord(in));
  if (GetU32(in, 4) != static_cast<uint32_t>(JournalRecordType::kCommit)) {
    return Corruption("not a commit block");
  }
  CommitBlock c;
  c.tx_id = GetU64(in, 8);
  return c;
}

void AreaSuperblock::Serialize(std::span<uint8_t> out) const {
  StampHeader(out, JournalRecordType::kAreaSuper, 0);
  PutU64(out, 16, start_offset);
  PutU64(out, 24, cleared_txid);
  StampChecksum(out);
}

Result<AreaSuperblock> AreaSuperblock::Parse(std::span<const uint8_t> in) {
  CCNVME_RETURN_IF_ERROR(ValidateRecord(in));
  if (GetU32(in, 4) != static_cast<uint32_t>(JournalRecordType::kAreaSuper)) {
    return Corruption("not an area superblock");
  }
  AreaSuperblock sb;
  sb.start_offset = GetU64(in, 16);
  sb.cleared_txid = GetU64(in, 24);
  return sb;
}

Result<JournalRecordType> PeekRecordType(std::span<const uint8_t> in) {
  CCNVME_RETURN_IF_ERROR(ValidateRecord(in));
  const uint32_t t = GetU32(in, 4);
  switch (static_cast<JournalRecordType>(t)) {
    case JournalRecordType::kDescriptor:
    case JournalRecordType::kCommit:
    case JournalRecordType::kAreaSuper:
      return static_cast<JournalRecordType>(t);
  }
  return Corruption("unknown journal record type");
}

}  // namespace ccnvme

#include "src/jbd2/jbd2.h"

#include "src/common/logging.h"
#include "src/extfs/extfs.h"
#include "src/metrics/metrics.h"
#include "src/trace/tracer.h"

namespace ccnvme {

// ---------------------------------------------------------------------------
// NullJournal (Ext4-NJ)

Status NullJournal::Sync(const SyncOp& op, SyncMode mode) {
  (void)mode;  // no atomicity to decouple: everything is durability
  // Ext4-NJ processes each class of block synchronously: the dirty data
  // pages, then the inode, then the remaining metadata — Figure 14(b) shows
  // these as back-to-back submit+wait phases. The page is frozen (and
  // contended) for the whole I/O — the in-place serialization MQFS's shadow
  // paging avoids.
  auto submit = [&](const BlockBufPtr& buf) {
    buf->BeginWriteback();
    BlockBufPtr keep = buf;
    return blk_->SubmitWrite(buf->block_no, &buf->data, 0, [keep] { keep->EndWriteback(); });
  };
  auto wait_all = [&](std::vector<NvmeDriver::RequestHandle>& handles) -> Status {
    for (auto& h : handles) {
      CCNVME_RETURN_IF_ERROR(blk_->Wait(h));
    }
    handles.clear();
    return OkStatus();
  };

  Tracer* tracer = sim_->tracer();
  std::vector<NvmeDriver::RequestHandle> handles;
  {
    ScopedSpan phase(tracer, TracePoint::kSyncWaitData);  // W-iD
    for (const BlockBufPtr& buf : op.data) {
      handles.push_back(submit(buf));
    }
    CCNVME_RETURN_IF_ERROR(wait_all(handles));
  }

  // The inode-table block first (sync_inode_metadata), then the rest.
  if (!op.metadata.empty()) {
    {
      ScopedSpan phase(tracer, TracePoint::kSyncWaitInode);  // W-iM
      handles.push_back(submit(op.metadata.front()));
      CCNVME_RETURN_IF_ERROR(wait_all(handles));
    }
    ScopedSpan phase(tracer, TracePoint::kSyncWaitParent);  // W-pM
    for (size_t i = 1; i < op.metadata.size(); ++i) {
      handles.push_back(submit(op.metadata[i]));
    }
    CCNVME_RETURN_IF_ERROR(wait_all(handles));
  }
  for (const BlockBufPtr& buf : op.data) {
    buf->dirty = false;
  }
  for (const BlockBufPtr& buf : op.metadata) {
    buf->dirty = false;
  }
  return blk_->FlushSync();
}

// ---------------------------------------------------------------------------
// Jbd2Journal

Jbd2Journal::Jbd2Journal(Simulator* sim, BlockLayer* blk, BufferCache* cache,
                         const FsLayout& layout, const HostCosts& costs, ExtFs* fs,
                         const Jbd2Options& options)
    : sim_(sim),
      blk_(blk),
      cache_(cache),
      costs_(costs),
      fs_(fs),
      options_(options),
      area_start_(layout.area_start(0)),
      area_blocks_(layout.blocks_per_area() * layout.journal_areas),
      free_blocks_(area_blocks_ - 1),
      mu_(sim),
      commit_cv_(sim),
      ckpt_mu_(sim) {
  // Classic journaling uses one compound journal: all areas fused.
  sim_->Spawn("kjournald", [this] { CommitLoop(); });
}

Status Jbd2Journal::Sync(const SyncOp& op, SyncMode mode) {
  (void)mode;  // JBD2 cannot decouple atomicity from durability
  // Ordered-data mode: user data goes in place. Classic Ext4 *waits* for it
  // before the metadata commit (an ordering point); HoraeFS overlaps it.
  std::vector<NvmeDriver::RequestHandle> data_handles;
  for (const BlockBufPtr& buf : op.data) {
    buf->BeginWriteback();
    BlockBufPtr keep = buf;
    data_handles.push_back(blk_->SubmitWrite(buf->block_no, &buf->data, 0,
                                             [keep] { keep->EndWriteback(); }));
  }
  if (!options_.horae) {
    for (auto& h : data_handles) {
      CCNVME_RETURN_IF_ERROR(blk_->Wait(h));
    }
    data_handles.clear();
  }
  for (const BlockBufPtr& buf : op.data) {
    buf->dirty = false;
  }

  std::shared_ptr<TxState> tx;
  const uint64_t join_begin = sim_->now();
  {
    SimLockGuard guard(mu_);
    // Joining the running transaction stalls while kjournald holds the
    // journal lock — the per-core handle wait of §3.
    if (Tracer* t = sim_->tracer()) {
      t->WaitEdgeEvent(WaitEdge::kJournalHandle, join_begin, sim_->now());
    }
    if (running_ == nullptr) {
      running_ = std::make_shared<TxState>(sim_);
      running_->tx_id = fs_->AllocTxId();
    }
    for (const BlockBufPtr& buf : op.metadata) {
      if (running_->members.insert(buf->block_no).second) {
        running_->metadata.push_back(buf);
        buf->jstate = JournalState::kInTransaction;
      }
    }
    CCNVME_CHECK_LE(running_->metadata.size(), DescriptorBlock::kMaxEntries)
        << "running transaction exceeds one descriptor";
    running_->waiters++;
    tx = running_;
    commit_requested_ = true;
    commit_cv_.NotifyOne();
  }
  // The request flow now has a (compound) transaction id.
  MutableTraceContext().tx_id = tx->tx_id;
  // Handoff to the dedicated journaling thread — the context-switch tax the
  // paper calls out for JBD2-style designs.
  Simulator::Sleep(costs_.journal_thread_switch_ns);
  for (auto& h : data_handles) {
    CCNVME_RETURN_IF_ERROR(blk_->Wait(h));
  }
  {
    ScopedSpan wait_span(sim_->tracer(), TracePoint::kSyncWaitDurable);
    const uint64_t barrier_begin = sim_->now();
    tx->durable.Wait();
    if (Tracer* t = sim_->tracer()) {
      t->WaitEdgeEvent(WaitEdge::kCommitBarrier, barrier_begin, sim_->now());
    }
    Simulator::Sleep(costs_.wakeup_ns);
  }
  return OkStatus();
}

void Jbd2Journal::RevokeBlock(BlockNo block) {
  SimLockGuard guard(mu_);
  pending_revocations_.push_back(block);
}

void Jbd2Journal::CommitLoop() {
  blk_->BindQueue(0);  // kjournald submits on core 0's queue
  for (;;) {
    std::shared_ptr<TxState> tx;
    {
      SimLockGuard guard(mu_);
      while (!commit_requested_) {
        commit_cv_.Wait(mu_);
      }
      commit_requested_ = false;
      tx = running_;
      running_ = nullptr;
    }
    if (tx == nullptr) {
      continue;
    }
    {
      // Journal-lock window: joins stall while the commit locks the journal.
      SimLockGuard guard(mu_);
      Simulator::Sleep(costs_.jbd2_commit_lock_ns);
    }
    Status st = CommitOne(tx);
    CCNVME_CHECK(st.ok()) << "journal commit failed: " << st.ToString();
    // Post-processing and per-waiter wakeup dispatch, all serial on the
    // commit thread — the single-core bottleneck of §3.
    Simulator::Sleep(costs_.jbd2_commit_post_ns +
                     static_cast<uint64_t>(tx->waiters) * costs_.jbd2_per_waiter_ns);
    tx->durable.Signal();
  }
}

Status Jbd2Journal::CommitOne(const std::shared_ptr<TxState>& tx) {
  ScopedTraceContext trace_ctx({0, tx->tx_id});
  ScopedSpan span(sim_->tracer(), TracePoint::kJournalCommit);
  Simulator::Sleep(costs_.journal_thread_switch_ns);  // wake kjournald
  Simulator::Sleep(costs_.fs_journal_desc_ns);

  std::vector<BlockNo> revocations;
  {
    SimLockGuard guard(mu_);
    revocations.swap(pending_revocations_);
    for (BlockNo lba : revocations) {
      revoked_[lba] = std::max(revoked_[lba], tx->tx_id);
    }
  }

  const uint64_t needed = 2 + tx->metadata.size();
  CCNVME_RETURN_IF_ERROR(CheckpointUntilFree(needed));

  // Freeze the buffers for the duration of the journal write; concurrent
  // modifiers stall on the page (the conflict behaviour of §5.3).
  for (const BlockBufPtr& buf : tx->metadata) {
    buf->BeginWriteback();
  }

  DescriptorBlock desc;
  desc.tx_id = tx->tx_id;
  desc.revoked = revocations;
  for (const BlockBufPtr& buf : tx->metadata) {
    desc.entries.push_back(JournalEntry{buf->block_no, Fnv1a(buf->data)});
  }
  Buffer desc_buf(kFsBlockSize, 0);
  desc.Serialize(desc_buf);

  if (options_.over_ccnvme) {
    // ccNVMe commit: descriptor first (it is the commit record; its
    // checksums validate the members at recovery), members after, one
    // transaction-aware flush + doorbell, in-order durable completion.
    const BlockNo jd_lba = AreaLba(head_off_);
    head_off_ = NextOff(head_off_);
    std::vector<BlockNo> member_lbas;
    for (size_t i = 0; i < tx->metadata.size(); ++i) {
      member_lbas.push_back(AreaLba(head_off_));
      head_off_ = NextOff(head_off_);
    }
    for (size_t i = 0; i < tx->metadata.size(); ++i) {
      Simulator::Sleep(costs_.jbd2_per_block_ns);
      blk_->SubmitTxWrite(tx->tx_id, member_lbas[i], &tx->metadata[i]->data);
    }
    if (Metrics* m = sim_->metrics()) {
      m->monitors().ExpectTxMembers(tx->tx_id, tx->metadata.size());
    }
    auto handle = blk_->CommitTx(tx->tx_id, jd_lba, &desc_buf);
    blk_->WaitTxDurable(handle);
    free_blocks_ -= tx->metadata.size() + 1;

    CheckpointTx cp;
    cp.tx_id = tx->tx_id;
    cp.blocks_used = tx->metadata.size() + 1;
    cp.end_offset = head_off_;
    for (const BlockBufPtr& buf : tx->metadata) {
      cp.writes.emplace_back(buf->block_no, buf->data);
      buf->jstate = JournalState::kClean;
      buf->dirty = false;
      buf->EndWriteback();
    }
    checkpoint_list_.push_back(std::move(cp));
    commits_++;
    return OkStatus();
  }

  std::vector<NvmeDriver::RequestHandle> handles;
  handles.push_back(blk_->SubmitWrite(AreaLba(head_off_), &desc_buf, 0));
  head_off_ = NextOff(head_off_);
  for (const BlockBufPtr& buf : tx->metadata) {
    Simulator::Sleep(costs_.jbd2_per_block_ns);
    handles.push_back(blk_->SubmitWrite(AreaLba(head_off_), &buf->data, 0));
    head_off_ = NextOff(head_off_);
  }

  CommitBlock commit;
  commit.tx_id = tx->tx_id;
  Buffer commit_buf(kFsBlockSize, 0);
  commit.Serialize(commit_buf);

  if (!options_.horae) {
    // Classic ordering point: the commit record must not be issued before
    // the journaled blocks are durable (PREFLUSH) and must itself be
    // durable (FUA).
    for (auto& h : handles) {
      CCNVME_RETURN_IF_ERROR(blk_->Wait(h));
    }
    if (Metrics* m = sim_->metrics()) {
      // Classic jbd2: every journaled block must be durable before the
      // commit record is issued (horae relaxes this by design, so the
      // monitor only arms on the strict path).
      uint64_t outstanding = 0;
      for (const auto& h : handles) {
        outstanding += h->done.signaled() ? 0 : 1;
      }
      m->monitors().OnJournalCommitRecord(tx->tx_id, outstanding);
    }
    handles.clear();
    CCNVME_RETURN_IF_ERROR(blk_->WriteSync(AreaLba(head_off_), commit_buf,
                                           kBioPreflush | kBioFua));
  } else {
    // Horae: dispatch everything eagerly; the ordering is guaranteed by the
    // dedicated control path, so only joint completion is awaited.
    handles.push_back(blk_->SubmitWrite(AreaLba(head_off_), &commit_buf, kBioFua));
    for (auto& h : handles) {
      CCNVME_RETURN_IF_ERROR(blk_->Wait(h));
    }
    handles.clear();
  }
  head_off_ = NextOff(head_off_);
  free_blocks_ -= needed;

  // Hand frozen copies to the checkpoint list, then release the pages.
  CheckpointTx cp;
  cp.tx_id = tx->tx_id;
  cp.blocks_used = needed;
  cp.end_offset = head_off_;
  for (const BlockBufPtr& buf : tx->metadata) {
    cp.writes.emplace_back(buf->block_no, buf->data);
    buf->jstate = JournalState::kClean;
    buf->dirty = false;
    buf->EndWriteback();
  }
  checkpoint_list_.push_back(std::move(cp));
  commits_++;
  return OkStatus();
}

Status Jbd2Journal::CheckpointUntilFree(uint64_t needed) {
  ScopedSpan span(sim_->tracer(), TracePoint::kJournalCheckpoint);
  SimLockGuard guard(ckpt_mu_);
  if (free_blocks_ >= needed) {
    return OkStatus();
  }
  bool advanced = false;
  while (free_blocks_ < needed + area_blocks_ / 4 && !checkpoint_list_.empty()) {
    CheckpointTx cp = std::move(checkpoint_list_.front());
    checkpoint_list_.pop_front();
    std::vector<NvmeDriver::RequestHandle> handles;
    for (const auto& [home, content] : cp.writes) {
      auto it = revoked_.find(home);
      if (it != revoked_.end() && it->second >= cp.tx_id) {
        continue;  // block was freed/reused after this copy was journaled
      }
      handles.push_back(blk_->SubmitWrite(home, &content, 0));
    }
    for (auto& h : handles) {
      CCNVME_RETURN_IF_ERROR(blk_->Wait(h));
    }
    free_blocks_ += cp.blocks_used;
    asb_.start_offset = cp.end_offset;
    asb_.cleared_txid = cp.tx_id;
    advanced = true;
    checkpoints_++;
  }
  if (advanced) {
    // Checkpointed blocks must be durable before their log space is reused.
    CCNVME_RETURN_IF_ERROR(blk_->FlushSync());
    CCNVME_RETURN_IF_ERROR(WriteAreaSuper());
  }
  if (free_blocks_ < needed) {
    return OutOfSpace("journal too small for transaction");
  }
  return OkStatus();
}

Status Jbd2Journal::WriteAreaSuper() {
  Buffer buf(kFsBlockSize, 0);
  asb_.Serialize(buf);
  return blk_->WriteSync(area_start_, buf, kBioFua);
}

Status Jbd2Journal::Recover() {
  ScopedSpan span(sim_->tracer(), TracePoint::kJournalRecover);
  Buffer raw;
  CCNVME_RETURN_IF_ERROR(blk_->ReadSync(area_start_, 1, &raw));
  CCNVME_ASSIGN_OR_RETURN(AreaSuperblock sb, AreaSuperblock::Parse(raw));

  struct ReplayTx {
    DescriptorBlock desc;
    std::vector<BlockNo> journal_lbas;
  };
  std::vector<ReplayTx> txs;
  uint64_t pos = sb.start_offset;
  uint64_t prev_txid = sb.cleared_txid;

  // Over ccNVMe the driver's recovered P-SQ window separates completed
  // transactions (trusted as-is, §4.4) from in-doubt ones that must pass
  // the descriptor's per-block content checksums.
  const bool have_window = options_.over_ccnvme && blk_->has_ccnvme();
  std::set<uint64_t> in_doubt;
  if (have_window) {
    for (const auto& req : blk_->RecoveredWindow()) {
      in_doubt.insert(req.tx_id);
    }
  }

  for (;;) {
    Buffer block;
    CCNVME_RETURN_IF_ERROR(blk_->ReadSync(AreaLba(pos), 1, &block));
    auto desc = DescriptorBlock::Parse(block);
    if (!desc.ok() || desc->tx_id <= prev_txid) {
      break;  // end of valid log
    }
    ReplayTx rt;
    rt.desc = std::move(*desc);
    const bool must_validate = !have_window || in_doubt.count(rt.desc.tx_id) != 0;
    uint64_t p = NextOff(pos);
    bool valid = true;
    for (const JournalEntry& entry : rt.desc.entries) {
      if (must_validate) {
        Buffer content;
        CCNVME_RETURN_IF_ERROR(blk_->ReadSync(AreaLba(p), 1, &content));
        if (Fnv1a(content) != entry.content_checksum) {
          valid = false;
          break;
        }
      }
      rt.journal_lbas.push_back(AreaLba(p));
      p = NextOff(p);
    }
    if (!valid) {
      break;
    }
    if (options_.over_ccnvme) {
      // The descriptor's per-block checksums (validated above) seal the
      // transaction; there is no commit record.
      prev_txid = rt.desc.tx_id;
      pos = p;
      txs.push_back(std::move(rt));
    } else {
      // The commit record seals the transaction.
      Buffer commit_raw;
      CCNVME_RETURN_IF_ERROR(blk_->ReadSync(AreaLba(p), 1, &commit_raw));
      auto commit = CommitBlock::Parse(commit_raw);
      if (!commit.ok() || commit->tx_id != rt.desc.tx_id) {
        break;
      }
      prev_txid = rt.desc.tx_id;
      pos = NextOff(p);
      txs.push_back(std::move(rt));
    }
  }

  // Revocations: a block revoked at tx R must not be replayed from tx < R.
  std::map<BlockNo, uint64_t> revmap;
  for (const ReplayTx& rt : txs) {
    for (BlockNo lba : rt.desc.revoked) {
      revmap[lba] = std::max(revmap[lba], rt.desc.tx_id);
    }
  }

  for (const ReplayTx& rt : txs) {
    for (size_t i = 0; i < rt.desc.entries.size(); ++i) {
      const BlockNo home = rt.desc.entries[i].home_lba;
      auto it = revmap.find(home);
      if (it != revmap.end() && it->second >= rt.desc.tx_id) {
        continue;
      }
      Buffer content;
      CCNVME_RETURN_IF_ERROR(blk_->ReadSync(rt.journal_lbas[i], 1, &content));
      CCNVME_RETURN_IF_ERROR(blk_->WriteSync(home, content));
    }
  }
  CCNVME_RETURN_IF_ERROR(blk_->FlushSync());

  // Reset the log.
  asb_.start_offset = pos;
  asb_.cleared_txid = prev_txid;
  head_off_ = pos;
  free_blocks_ = area_blocks_ - 1;
  return WriteAreaSuper();
}

Status Jbd2Journal::Shutdown() {
  // Commit any running transaction.
  std::shared_ptr<TxState> tx;
  {
    SimLockGuard guard(mu_);
    tx = running_;
    if (tx != nullptr) {
      commit_requested_ = true;
      commit_cv_.NotifyOne();
    }
  }
  if (tx != nullptr) {
    tx->durable.Wait();
  }
  // Checkpoint everything so the journal is empty.
  {
    SimLockGuard guard(ckpt_mu_);
    while (!checkpoint_list_.empty()) {
      CheckpointTx cp = std::move(checkpoint_list_.front());
      checkpoint_list_.pop_front();
      for (const auto& [home, content] : cp.writes) {
        auto it = revoked_.find(home);
        if (it != revoked_.end() && it->second >= cp.tx_id) {
          continue;
        }
        CCNVME_RETURN_IF_ERROR(blk_->WriteSync(home, content));
      }
      free_blocks_ += cp.blocks_used;
      asb_.start_offset = cp.end_offset;
      asb_.cleared_txid = cp.tx_id;
    }
  }
  CCNVME_RETURN_IF_ERROR(blk_->FlushSync());
  return WriteAreaSuper();
}

}  // namespace ccnvme

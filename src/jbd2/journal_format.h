// On-media journal record formats, shared by the classic JBD2-style journal
// and MQFS's multi-queue journal.
//
// A transaction in the log is:
//   [descriptor block][journaled block]*[commit block]      (classic)
//   [journaled block]*[descriptor block]                    (MQFS)
// In MQFS the descriptor doubles as the commit record: it carries a
// content checksum per journaled block, so recovery can validate a
// transaction without a separate commit block — ringing the ccNVMe P-SQDB
// "plays the same role as the commit block" (§5.1), and the checksums
// detect transactions whose blocks never fully reached media.
//
// Every record block starts with (magic, type, tx_id) and ends with a
// checksum of the whole block, so a recovery scan can stop at the first
// torn or stale record.
#ifndef SRC_JBD2_JOURNAL_FORMAT_H_
#define SRC_JBD2_JOURNAL_FORMAT_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/vfs/types.h"

namespace ccnvme {

inline constexpr uint32_t kJournalMagic = 0x4A4E4C31;  // "JNL1"

enum class JournalRecordType : uint32_t {
  kDescriptor = 1,
  kCommit = 2,
  kAreaSuper = 4,
};

struct JournalEntry {
  BlockNo home_lba = 0;
  uint64_t content_checksum = 0;  // FNV-1a of the journaled block
};

// Descriptor: maps the following journaled blocks (classic) or the
// preceding ones (MQFS) to their home locations. Also carries the
// transaction's revocation list (§5.4).
struct DescriptorBlock {
  uint64_t tx_id = 0;
  std::vector<JournalEntry> entries;
  std::vector<BlockNo> revoked;

  static constexpr size_t kHeaderSize = 24;
  static constexpr size_t kMaxEntries = 200;  // 16 B each; leaves room for revocations

  void Serialize(std::span<uint8_t> out) const;
  static Result<DescriptorBlock> Parse(std::span<const uint8_t> in);
};

struct CommitBlock {
  uint64_t tx_id = 0;

  void Serialize(std::span<uint8_t> out) const;
  static Result<CommitBlock> Parse(std::span<const uint8_t> in);
};

// Per-area superblock (block 0 of each journal area).
struct AreaSuperblock {
  // Scan starts here (area-relative block index, in [1, area_blocks)).
  uint64_t start_offset = 1;
  // Transactions with id <= cleared_txid have been checkpointed; recovery
  // ignores any record carrying such an id (stale after wraparound).
  uint64_t cleared_txid = 0;

  void Serialize(std::span<uint8_t> out) const;
  static Result<AreaSuperblock> Parse(std::span<const uint8_t> in);
};

// Returns the record type of a raw journal block, or an error if the block
// is not a valid record (torn write, stale data, user payload).
Result<JournalRecordType> PeekRecordType(std::span<const uint8_t> in);

}  // namespace ccnvme

#endif  // SRC_JBD2_JOURNAL_FORMAT_H_

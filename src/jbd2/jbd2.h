// Classic journaling (JBD2) and the no-journal baseline.
//
// Jbd2Journal models Ext4's crash-consistency machinery:
//   * a single global *running transaction* that concurrent fsyncs join
//     (group commit),
//   * a dedicated commit thread (kjournald) that writes
//     [descriptor][journaled blocks][commit record] into the journal area,
//   * ordering points: in classic mode the commit record is issued only
//     after the journaled blocks complete, and carries PREFLUSH|FUA,
//   * checkpointing: frozen copies of journaled blocks are later written in
//     place and the log tail advances,
//   * revocation records for the block-reuse problem,
//   * mount-time recovery: scan, validate, replay.
//
// The `horae` option models HoraeFS (OSDI'20): the ordering points are
// removed — journaled blocks, descriptor and commit record are dispatched
// together and only their joint completion is awaited (Horae's dedicated
// ordering control path guarantees the persist order) — while the commit
// record, commit thread and PCIe traffic stay identical to Ext4, exactly as
// Table 1 characterizes it.
//
// NullJournal is Ext4-NJ: fsync writes everything in place and flushes.
#ifndef SRC_JBD2_JBD2_H_
#define SRC_JBD2_JBD2_H_

#include <deque>
#include <map>
#include <memory>
#include <set>

#include "src/block/block_layer.h"
#include "src/driver/host_costs.h"
#include "src/extfs/layout.h"
#include "src/jbd2/journal_format.h"
#include "src/vfs/journal.h"

namespace ccnvme {

class ExtFs;

class NullJournal : public Journal {
 public:
  NullJournal(Simulator* sim, BlockLayer* blk, BufferCache* cache, const HostCosts& costs)
      : sim_(sim), blk_(blk), cache_(cache), costs_(costs) {}

  Status Sync(const SyncOp& op, SyncMode mode) override;
  void RevokeBlock(BlockNo block) override { (void)block; }
  Status Recover() override { return OkStatus(); }
  Status Shutdown() override { return OkStatus(); }

 private:
  Simulator* sim_;
  BlockLayer* blk_;
  BufferCache* cache_;
  HostCosts costs_;
};

struct Jbd2Options {
  bool horae = false;
  // "+ccNVMe" of Figure 13: keep JBD2's structure (global running
  // transaction, dedicated commit thread, freeze-during-commit) but commit
  // through a ccNVMe transaction — no commit record, no ordering points,
  // one flush + one doorbell.
  bool over_ccnvme = false;
};

class Jbd2Journal : public Journal {
 public:
  Jbd2Journal(Simulator* sim, BlockLayer* blk, BufferCache* cache, const FsLayout& layout,
              const HostCosts& costs, ExtFs* fs, const Jbd2Options& options);

  Status Sync(const SyncOp& op, SyncMode mode) override;
  void RevokeBlock(BlockNo block) override;
  Status Recover() override;
  Status Shutdown() override;

  uint64_t commits() const { return commits_; }
  uint64_t checkpoints() const { return checkpoints_; }

 private:
  struct TxState {
    explicit TxState(Simulator* sim) : durable(sim) {}
    uint64_t tx_id = 0;
    std::vector<BlockBufPtr> metadata;
    std::set<BlockNo> members;
    int waiters = 0;  // fsync callers group-committed by this transaction
    SimCompletion durable;
  };

  struct CheckpointTx {
    uint64_t tx_id = 0;
    uint64_t blocks_used = 0;
    uint64_t end_offset = 0;  // area offset just past this transaction
    std::vector<std::pair<BlockNo, Buffer>> writes;  // frozen copies
  };

  void CommitLoop();
  Status CommitOne(const std::shared_ptr<TxState>& tx);
  // Frees journal space by writing back the oldest checkpointable
  // transactions until |needed| blocks are available.
  Status CheckpointUntilFree(uint64_t needed);
  Status WriteAreaSuper();
  uint64_t NextOff(uint64_t off) const { return off + 1 >= area_blocks_ ? 1 : off + 1; }
  BlockNo AreaLba(uint64_t off) const { return area_start_ + off; }

  Simulator* sim_;
  BlockLayer* blk_;
  BufferCache* cache_;
  HostCosts costs_;
  ExtFs* fs_;
  Jbd2Options options_;

  BlockNo area_start_;
  uint64_t area_blocks_;
  uint64_t head_off_ = 1;
  uint64_t free_blocks_;
  AreaSuperblock asb_;

  SimMutex mu_;
  SimCondVar commit_cv_;
  SimMutex ckpt_mu_;
  std::shared_ptr<TxState> running_;
  bool commit_requested_ = false;
  std::vector<BlockNo> pending_revocations_;
  // home block -> latest revoking tx id; checkpoint and recovery skip
  // journal copies older than the revocation.
  std::map<BlockNo, uint64_t> revoked_;
  std::deque<CheckpointTx> checkpoint_list_;

  uint64_t commits_ = 0;
  uint64_t checkpoints_ = 0;
};

}  // namespace ccnvme

#endif  // SRC_JBD2_JBD2_H_

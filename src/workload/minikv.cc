#include "src/workload/minikv.h"

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace ccnvme {

Status MiniKv::Open() {
  CCNVME_ASSIGN_OR_RETURN(wal_ino_, stack_->fs().Create("/kv_wal_0"));
  return OkStatus();
}

std::string MiniKv::EncodeRecord(const std::string& key, const std::string& value) {
  std::string rec;
  rec.reserve(8 + key.size() + value.size());
  uint8_t hdr[8];
  PutU32(std::span<uint8_t>(hdr, 8), 0, static_cast<uint32_t>(key.size()));
  PutU32(std::span<uint8_t>(hdr, 8), 4, static_cast<uint32_t>(value.size()));
  rec.append(reinterpret_cast<const char*>(hdr), 8);
  rec.append(key);
  rec.append(value);
  return rec;
}

Status MiniKv::AppendWalBatch(const Buffer& batch) {
  CCNVME_RETURN_IF_ERROR(stack_->fs().Write(wal_ino_, wal_offset_, batch));
  wal_offset_ += batch.size();
  Status st;
  switch (options_.wal_sync) {
    case SyncMode::kFsync:
      st = stack_->fs().Fsync(wal_ino_);
      break;
    case SyncMode::kFatomic:
      st = stack_->fs().Fatomic(wal_ino_);
      break;
    case SyncMode::kFdataatomic:
      st = stack_->fs().Fdataatomic(wal_ino_);
      break;
  }
  wal_syncs_++;
  return st;
}

Status MiniKv::Put(const std::string& key, const std::string& value) {
  Simulator::Sleep(options_.kv_cpu_ns);  // encode + memtable CPU
  auto writer = std::make_shared<Writer>(&stack_->sim());
  writer->record = EncodeRecord(key, value);

  mu_.Lock();
  // Memtable insert happens while enqueuing (followers return without
  // re-acquiring the lock once their batch commits).
  memtable_[key] = value;
  memtable_bytes_ += key.size() + value.size();
  puts_++;
  queue_.push_back(writer);
  if (leader_active_) {
    // A leader is busy; wait for our batch to be committed.
    mu_.Unlock();
    writer->done.Wait();
    return writer->result;
  }
  // Become the leader: take everything queued (our own record plus any
  // writers that piled up) and commit it as one WAL append + sync.
  leader_active_ = true;
  Status st = OkStatus();
  while (true) {
    std::vector<std::shared_ptr<Writer>> batch;
    batch.swap(queue_);
    if (batch.empty()) {
      break;
    }
    Buffer bytes;
    for (const auto& w : batch) {
      bytes.insert(bytes.end(), w->record.begin(), w->record.end());
    }
    mu_.Unlock();
    Status batch_st = AppendWalBatch(bytes);
    mu_.Lock();
    for (const auto& w : batch) {
      w->result = batch_st;
      if (w != writer) {
        w->done.Signal();
      } else {
        st = batch_st;
      }
    }
  }
  leader_active_ = false;
  Status flush_st = MaybeFlushMemtable();
  mu_.Unlock();
  if (!flush_st.ok()) {
    return flush_st;
  }
  return st;
}

// Called with mu_ held. Swaps in a fresh memtable and rotates the WAL under
// the lock (cheap, in-memory), then releases the lock for the slow SST
// build so other writers keep going — RocksDB's immutable-memtable flush.
Status MiniKv::MaybeFlushMemtable() {
  if (memtable_bytes_ < options_.memtable_bytes) {
    return OkStatus();
  }
  flushes_++;
  std::map<std::string, std::string> imm;
  imm.swap(memtable_);
  memtable_bytes_ = 0;
  const std::string old_wal = "/kv_wal_" + std::to_string(wal_epoch_);
  wal_epoch_++;
  CCNVME_ASSIGN_OR_RETURN(wal_ino_, stack_->fs().Create("/kv_wal_" + std::to_string(wal_epoch_)));
  wal_offset_ = 0;

  mu_.Unlock();
  Status st = [&]() -> Status {
    // Serialize the immutable memtable into an SST file (already sorted).
    Buffer sst;
    for (const auto& [k, v] : imm) {
      const std::string rec = EncodeRecord(k, v);
      sst.insert(sst.end(), rec.begin(), rec.end());
    }
    const std::string sst_path = "/kv_sst_" + std::to_string(next_sst_++);
    CCNVME_ASSIGN_OR_RETURN(InodeNum sst_ino, stack_->fs().Create(sst_path));
    CCNVME_RETURN_IF_ERROR(stack_->fs().Write(sst_ino, 0, sst));
    CCNVME_RETURN_IF_ERROR(stack_->fs().Fsync(sst_ino));
    ssts_.insert(ssts_.begin(), sst_path);
    // The old WAL is now covered by the SST.
    CCNVME_RETURN_IF_ERROR(stack_->fs().Unlink(old_wal));
    return stack_->fs().FsyncPath("/");
  }();
  mu_.Lock();
  return st;
}

Result<std::string> MiniKv::Get(const std::string& key) {
  Simulator::Sleep(options_.kv_cpu_ns / 2);
  SimLockGuard guard(mu_);
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    return it->second;
  }
  // Scan SSTs newest-first.
  for (const std::string& path : ssts_) {
    auto ino = stack_->fs().Lookup(path);
    if (!ino.ok()) {
      continue;
    }
    auto size = stack_->fs().FileSize(*ino);
    if (!size.ok()) {
      continue;
    }
    Buffer content(*size);
    if (!stack_->fs().Read(*ino, 0, content).ok()) {
      continue;
    }
    size_t off = 0;
    while (off + 8 <= content.size()) {
      const uint32_t klen = GetU32(content, off);
      const uint32_t vlen = GetU32(content, off + 4);
      if (off + 8 + klen + vlen > content.size()) {
        break;
      }
      const std::string k(reinterpret_cast<const char*>(content.data()) + off + 8, klen);
      if (k == key) {
        return std::string(reinterpret_cast<const char*>(content.data()) + off + 8 + klen,
                           vlen);
      }
      off += 8 + klen + vlen;
    }
  }
  return NotFound("key not found: " + key);
}

FillsyncResult RunFillsync(StorageStack& stack, const FillsyncOptions& options) {
  FillsyncResult result;
  MiniKv kv(&stack, options.kv);
  Status opened = IoError("not opened");
  stack.Run([&] { opened = kv.Open(); });
  CCNVME_CHECK(opened.ok());

  const uint64_t start_ns = stack.sim().now();
  const uint64_t end_ns = start_ns + options.duration_ns;
  int finished = 0;
  for (int t = 0; t < options.num_threads; ++t) {
    const uint16_t queue = static_cast<uint16_t>(t % stack.config().num_queues);
    stack.Spawn("fillsync" + std::to_string(t), [&, t] {
      Rng rng(options.seed + static_cast<uint64_t>(t) * 131);
      std::string value(options.kv.value_size, 'v');
      while (stack.sim().now() < end_ns) {
        char key[32];
        std::snprintf(key, sizeof(key), "%016llx",
                      static_cast<unsigned long long>(rng.Next()));
        Status st = kv.Put(std::string(key, options.kv.key_size), value);
        CCNVME_CHECK(st.ok()) << st.ToString();
        result.ops++;
      }
      finished++;
    }, queue);
  }
  stack.sim().Run();
  CCNVME_CHECK_EQ(finished, options.num_threads);
  result.elapsed_ns = stack.sim().now() - start_ns;
  return result;
}

}  // namespace ccnvme

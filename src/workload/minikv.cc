#include "src/workload/minikv.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace ccnvme {

Status MiniKv::Open() {
  if (options_.backend == MiniKvBackend::kKvSsd) {
    CCNVME_CHECK(stack_->kv_driver() != nullptr)
        << "MiniKvBackend::kKvSsd needs a config.kv.enabled stack";
    return OkStatus();
  }
  CCNVME_ASSIGN_OR_RETURN(wal_ino_, stack_->fs().Create("/kv_wal_0"));
  return OkStatus();
}

std::string MiniKv::EncodeRecord(const std::string& key, const std::string* value) {
  std::string rec;
  rec.reserve(8 + key.size() + (value != nullptr ? value->size() : 0));
  uint8_t hdr[8];
  PutU32(std::span<uint8_t>(hdr, 8), 0, static_cast<uint32_t>(key.size()));
  PutU32(std::span<uint8_t>(hdr, 8), 4,
         value != nullptr ? static_cast<uint32_t>(value->size()) : kTombstoneLen);
  rec.append(reinterpret_cast<const char*>(hdr), 8);
  rec.append(key);
  if (value != nullptr) {
    rec.append(*value);
  }
  return rec;
}

Status MiniKv::AppendWalBatch(const Buffer& batch) {
  CCNVME_RETURN_IF_ERROR(stack_->fs().Write(wal_ino_, wal_offset_, batch));
  wal_offset_ += batch.size();
  Status st;
  switch (options_.wal_sync) {
    case SyncMode::kFsync:
      st = stack_->fs().Fsync(wal_ino_);
      break;
    case SyncMode::kFatomic:
      st = stack_->fs().Fatomic(wal_ino_);
      break;
    case SyncMode::kFdataatomic:
      st = stack_->fs().Fdataatomic(wal_ino_);
      break;
  }
  wal_syncs_++;
  return st;
}

Status MiniKv::Put(const std::string& key, const std::string& value) {
  if (options_.backend == MiniKvBackend::kKvSsd) {
    // Device-native: one KV Store on the caller's queue. No WAL, no
    // memtable — the device's shadow commit is the durability point.
    Simulator::Sleep(options_.kv_cpu_ns);
    puts_++;
    return stack_->kv_driver()->Store(stack_->blk().current_queue(), key, value);
  }
  return WriteFsRecord(key, &value);
}

Status MiniKv::Delete(const std::string& key) {
  if (options_.backend == MiniKvBackend::kKvSsd) {
    Simulator::Sleep(options_.kv_cpu_ns);
    return stack_->kv_driver()->Delete(stack_->blk().current_queue(), key);
  }
  Result<bool> exists = Exist(key);
  if (!exists.ok()) {
    return exists.status();
  }
  if (!*exists) {
    return NotFound("key not found: " + key);
  }
  return WriteFsRecord(key, nullptr);
}

Result<bool> MiniKv::Exist(const std::string& key) {
  if (options_.backend == MiniKvBackend::kKvSsd) {
    Simulator::Sleep(options_.kv_cpu_ns / 2);
    return stack_->kv_driver()->Exist(stack_->blk().current_queue(), key);
  }
  Result<std::string> got = Get(key);
  if (got.ok()) {
    return true;
  }
  if (got.status().code() == ErrorCode::kNotFound) {
    return false;
  }
  return got.status();
}

Result<std::vector<std::string>> MiniKv::ListKeys() {
  if (options_.backend == MiniKvBackend::kKvSsd) {
    Simulator::Sleep(options_.kv_cpu_ns);
    Result<std::vector<std::string>> keys =
        stack_->kv_driver()->ListKeys(stack_->blk().current_queue());
    if (keys.ok()) {
      std::sort(keys->begin(), keys->end());
    }
    return keys;
  }
  // LSM merge, newest layer wins: memtable over SSTs (newest-first), with
  // tombstones suppressing every older occurrence of their key.
  SimLockGuard guard(mu_);
  std::map<std::string, bool> live;  // key -> is live (first sighting wins)
  for (const auto& [k, v] : memtable_) {
    live.emplace(k, v.has_value());
  }
  for (const std::string& path : ssts_) {
    auto ino = stack_->fs().Lookup(path);
    if (!ino.ok()) {
      continue;
    }
    auto size = stack_->fs().FileSize(*ino);
    if (!size.ok()) {
      continue;
    }
    Buffer content(*size);
    if (!stack_->fs().Read(*ino, 0, content).ok()) {
      continue;
    }
    size_t off = 0;
    while (off + 8 <= content.size()) {
      const uint32_t klen = GetU32(content, off);
      const uint32_t vlen = GetU32(content, off + 4);
      const uint64_t vbytes = vlen == kTombstoneLen ? 0 : vlen;
      if (off + 8 + klen + vbytes > content.size()) {
        break;
      }
      std::string k(reinterpret_cast<const char*>(content.data()) + off + 8, klen);
      live.emplace(std::move(k), vlen != kTombstoneLen);
      off += 8 + klen + vbytes;
    }
  }
  std::vector<std::string> keys;
  for (const auto& [k, is_live] : live) {
    if (is_live) {
      keys.push_back(k);
    }
  }
  return keys;
}

Status MiniKv::WriteFsRecord(const std::string& key, const std::string* value) {
  Simulator::Sleep(options_.kv_cpu_ns);  // encode + memtable CPU
  auto writer = std::make_shared<Writer>(&stack_->sim());
  writer->record = EncodeRecord(key, value);

  mu_.Lock();
  // Memtable insert happens while enqueuing (followers return without
  // re-acquiring the lock once their batch commits).
  if (value != nullptr) {
    memtable_[key] = *value;
    memtable_bytes_ += key.size() + value->size();
    puts_++;
  } else {
    memtable_[key] = std::nullopt;
    memtable_bytes_ += key.size();
  }
  queue_.push_back(writer);
  if (leader_active_) {
    // A leader is busy; wait for our batch to be committed.
    mu_.Unlock();
    writer->done.Wait();
    return writer->result;
  }
  // Become the leader: take everything queued (our own record plus any
  // writers that piled up) and commit it as one WAL append + sync.
  leader_active_ = true;
  Status st = OkStatus();
  while (true) {
    std::vector<std::shared_ptr<Writer>> batch;
    batch.swap(queue_);
    if (batch.empty()) {
      break;
    }
    Buffer bytes;
    for (const auto& w : batch) {
      bytes.insert(bytes.end(), w->record.begin(), w->record.end());
    }
    mu_.Unlock();
    Status batch_st = AppendWalBatch(bytes);
    mu_.Lock();
    for (const auto& w : batch) {
      w->result = batch_st;
      if (w != writer) {
        w->done.Signal();
      } else {
        st = batch_st;
      }
    }
  }
  leader_active_ = false;
  Status flush_st = MaybeFlushMemtable();
  mu_.Unlock();
  if (!flush_st.ok()) {
    return flush_st;
  }
  return st;
}

// Called with mu_ held. Swaps in a fresh memtable and rotates the WAL under
// the lock (cheap, in-memory), then releases the lock for the slow SST
// build so other writers keep going — RocksDB's immutable-memtable flush.
Status MiniKv::MaybeFlushMemtable() {
  if (memtable_bytes_ < options_.memtable_bytes) {
    return OkStatus();
  }
  flushes_++;
  std::map<std::string, std::optional<std::string>> imm;
  imm.swap(memtable_);
  memtable_bytes_ = 0;
  const std::string old_wal = "/kv_wal_" + std::to_string(wal_epoch_);
  wal_epoch_++;
  CCNVME_ASSIGN_OR_RETURN(wal_ino_, stack_->fs().Create("/kv_wal_" + std::to_string(wal_epoch_)));
  wal_offset_ = 0;

  mu_.Unlock();
  Status st = [&]() -> Status {
    // Serialize the immutable memtable into an SST file (already sorted).
    // Tombstones are flushed too: they must shadow older SSTs' entries.
    Buffer sst;
    for (const auto& [k, v] : imm) {
      const std::string rec = EncodeRecord(k, v.has_value() ? &*v : nullptr);
      sst.insert(sst.end(), rec.begin(), rec.end());
    }
    const std::string sst_path = "/kv_sst_" + std::to_string(next_sst_++);
    CCNVME_ASSIGN_OR_RETURN(InodeNum sst_ino, stack_->fs().Create(sst_path));
    CCNVME_RETURN_IF_ERROR(stack_->fs().Write(sst_ino, 0, sst));
    CCNVME_RETURN_IF_ERROR(stack_->fs().Fsync(sst_ino));
    ssts_.insert(ssts_.begin(), sst_path);
    // The old WAL is now covered by the SST.
    CCNVME_RETURN_IF_ERROR(stack_->fs().Unlink(old_wal));
    return stack_->fs().FsyncPath("/");
  }();
  mu_.Lock();
  return st;
}

Result<std::string> MiniKv::Get(const std::string& key) {
  Simulator::Sleep(options_.kv_cpu_ns / 2);
  if (options_.backend == MiniKvBackend::kKvSsd) {
    CCNVME_ASSIGN_OR_RETURN(
        Buffer value, stack_->kv_driver()->Retrieve(stack_->blk().current_queue(), key));
    return std::string(reinterpret_cast<const char*>(value.data()), value.size());
  }
  SimLockGuard guard(mu_);
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (!it->second.has_value()) {
      return NotFound("key not found: " + key);  // memtable tombstone
    }
    return *it->second;
  }
  // Scan SSTs newest-first; a tombstone in a newer SST wins.
  for (const std::string& path : ssts_) {
    auto ino = stack_->fs().Lookup(path);
    if (!ino.ok()) {
      continue;
    }
    auto size = stack_->fs().FileSize(*ino);
    if (!size.ok()) {
      continue;
    }
    Buffer content(*size);
    if (!stack_->fs().Read(*ino, 0, content).ok()) {
      continue;
    }
    size_t off = 0;
    while (off + 8 <= content.size()) {
      const uint32_t klen = GetU32(content, off);
      const uint32_t vlen = GetU32(content, off + 4);
      const uint64_t vbytes = vlen == kTombstoneLen ? 0 : vlen;
      if (off + 8 + klen + vbytes > content.size()) {
        break;
      }
      const std::string k(reinterpret_cast<const char*>(content.data()) + off + 8, klen);
      if (k == key) {
        if (vlen == kTombstoneLen) {
          return NotFound("key not found: " + key);
        }
        return std::string(reinterpret_cast<const char*>(content.data()) + off + 8 + klen,
                           vlen);
      }
      off += 8 + klen + vbytes;
    }
  }
  return NotFound("key not found: " + key);
}

FillsyncResult RunFillsync(StorageStack& stack, const FillsyncOptions& options) {
  FillsyncResult result;
  MiniKv kv(&stack, options.kv);
  Status opened = IoError("not opened");
  stack.Run([&] { opened = kv.Open(); });
  CCNVME_CHECK(opened.ok());

  const uint64_t start_ns = stack.sim().now();
  const uint64_t end_ns = start_ns + options.duration_ns;
  int finished = 0;
  for (int t = 0; t < options.num_threads; ++t) {
    const uint16_t queue = static_cast<uint16_t>(t % stack.config().num_queues);
    stack.Spawn("fillsync" + std::to_string(t), [&, t] {
      Rng rng(options.seed + static_cast<uint64_t>(t) * 131);
      std::string value(options.kv.value_size, 'v');
      while (stack.sim().now() < end_ns) {
        char key[32];
        const uint64_t k =
            options.key_space != 0 ? rng.Uniform(options.key_space) : rng.Next();
        std::snprintf(key, sizeof(key), "%016llx",
                      static_cast<unsigned long long>(k));
        Status st = kv.Put(std::string(key, options.kv.key_size), value);
        CCNVME_CHECK(st.ok()) << st.ToString();
        result.ops++;
      }
      finished++;
    }, queue);
  }
  stack.sim().Run();
  CCNVME_CHECK_EQ(finished, options.num_threads);
  result.elapsed_ns = stack.sim().now() - start_ns;
  return result;
}

}  // namespace ccnvme

// Filebench Varmail-like workload (§7.4, Figure 12(a)).
//
// The classic mail-server loop, per thread:
//   1. delete a random mail file
//   2. create a new mail file, append, fsync
//   3. open a random file, read it, append, fsync
//   4. open a random file, read it whole
// Metadata-heavy and fsync-intensive — exactly what stresses the journaling
// machinery. Throughput is reported in flow-operations per second, like
// filebench.
#ifndef SRC_WORKLOAD_VARMAIL_H_
#define SRC_WORKLOAD_VARMAIL_H_

#include <cstdint>

#include "src/common/stats.h"
#include "src/harness/stack.h"

namespace ccnvme {

struct VarmailOptions {
  int num_threads = 16;
  int num_files = 200;           // pre-created mail files
  uint32_t mean_append_bytes = 8192;
  uint64_t duration_ns = 30'000'000;
  uint64_t seed = 99;
};

struct VarmailResult {
  uint64_t flow_ops = 0;  // each of the 4 loop phases counts as one op
  uint64_t elapsed_ns = 0;
  double KopsPerSec() const {
    return elapsed_ns == 0
               ? 0.0
               : static_cast<double>(flow_ops) * 1e9 / static_cast<double>(elapsed_ns) / 1e3;
  }
};

VarmailResult RunVarmail(StorageStack& stack, const VarmailOptions& options);

}  // namespace ccnvme

#endif  // SRC_WORKLOAD_VARMAIL_H_

#include "src/workload/varmail.h"

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace ccnvme {

namespace {

std::string MailPath(int thread, int index) {
  return "/mail_t" + std::to_string(thread) + "_" + std::to_string(index);
}

}  // namespace

VarmailResult RunVarmail(StorageStack& stack, const VarmailOptions& options) {
  VarmailResult result;
  // Pre-create the mail set, spread across threads' name spaces so delete /
  // create cycles stay balanced. (Filebench pre-allocates the fileset too.)
  const int files_per_thread = std::max(1, options.num_files / options.num_threads);
  int prepared = 0;
  for (int t = 0; t < options.num_threads; ++t) {
    const uint16_t queue = static_cast<uint16_t>(t % stack.config().num_queues);
    stack.Spawn("varmail_prep" + std::to_string(t), [&, t] {
      Rng rng(options.seed + static_cast<uint64_t>(t));
      for (int i = 0; i < files_per_thread; ++i) {
        auto ino = stack.fs().Create(MailPath(t, i));
        CCNVME_CHECK(ino.ok());
        const Buffer body(options.mean_append_bytes / 2 +
                              rng.Uniform(options.mean_append_bytes),
                          0x6D);
        CCNVME_CHECK(stack.fs().Write(*ino, 0, body).ok());
      }
      prepared++;
    }, queue);
  }
  stack.sim().Run();
  CCNVME_CHECK_EQ(prepared, options.num_threads);

  const uint64_t start_ns = stack.sim().now();
  const uint64_t end_ns = start_ns + options.duration_ns;
  int finished = 0;

  for (int t = 0; t < options.num_threads; ++t) {
    const uint16_t queue = static_cast<uint16_t>(t % stack.config().num_queues);
    stack.Spawn("varmail" + std::to_string(t), [&, t] {
      Rng rng(options.seed * 7919 + static_cast<uint64_t>(t));
      int next_new = files_per_thread;
      while (stack.sim().now() < end_ns) {
        // 1. deletefile
        const int victim = static_cast<int>(rng.Uniform(static_cast<uint64_t>(next_new)));
        if (stack.fs().Unlink(MailPath(t, victim)).ok()) {
          result.flow_ops++;
        }

        // 2. createfile + append + fsync
        const std::string fresh = MailPath(t, next_new++);
        auto created = stack.fs().Create(fresh);
        CCNVME_CHECK(created.ok());
        Buffer body(options.mean_append_bytes / 2 + rng.Uniform(options.mean_append_bytes),
                    0x41);
        CCNVME_CHECK(stack.fs().Write(*created, 0, body).ok());
        CCNVME_CHECK(stack.fs().Fsync(*created).ok());
        result.flow_ops++;

        // 3. open random + read whole + append + fsync
        const int reader =
            static_cast<int>(rng.Uniform(static_cast<uint64_t>(next_new)));
        auto found = stack.fs().Lookup(MailPath(t, reader));
        if (found.ok()) {
          auto size = stack.fs().FileSize(*found);
          if (size.ok() && *size > 0) {
            Buffer content(*size);
            (void)stack.fs().Read(*found, 0, content);
          }
          Buffer extra(options.mean_append_bytes / 2, 0x42);
          if (stack.fs().Append(*found, extra).ok()) {
            CCNVME_CHECK(stack.fs().Fsync(*found).ok());
          }
          result.flow_ops++;
        }

        // 4. open random + read whole
        const int reread =
            static_cast<int>(rng.Uniform(static_cast<uint64_t>(next_new)));
        auto found2 = stack.fs().Lookup(MailPath(t, reread));
        if (found2.ok()) {
          auto size = stack.fs().FileSize(*found2);
          if (size.ok() && *size > 0) {
            Buffer content(*size);
            (void)stack.fs().Read(*found2, 0, content);
          }
          result.flow_ops++;
        }
      }
      finished++;
    }, queue);
  }
  stack.sim().Run();
  CCNVME_CHECK_EQ(finished, options.num_threads);
  result.elapsed_ns = stack.sim().now() - start_ns;
  return result;
}

}  // namespace ccnvme

#include "src/workload/fio_append.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/logging.h"
#include "src/harness/host_model.h"

namespace ccnvme {

FioResult RunFioAppend(StorageStack& stack, const FioOptions& options) {
  FioResult result;
  const uint64_t start_ns = stack.sim().now();
  const uint64_t end_ns = start_ns + options.duration_ns;

  HostModelConfig hm_cfg;
  hm_cfg.num_cores =
      options.num_cores != 0
          ? options.num_cores
          : static_cast<uint16_t>(std::min<int>(options.num_threads,
                                                stack.config().num_queues));
  hm_cfg.total_contexts = static_cast<uint32_t>(options.num_threads);
  hm_cfg.context_switch_ns = options.context_switch_ns;
  HostModel host(&stack, hm_cfg);

  const uint32_t num_clients = options.num_clients != 0
                                   ? options.num_clients
                                   : static_cast<uint32_t>(options.num_threads);

  // Per-client state lives across scheduling quanta (one quantum = one
  // append+sync); the vector is sized up front so references stay stable.
  struct ClientState {
    InodeNum ino = kInvalidInode;
    uint64_t offset = 0;
    Buffer data;
  };
  auto states = std::make_shared<std::vector<ClientState>>(num_clients);
  for (uint32_t i = 0; i < num_clients; ++i) {
    (*states)[i].data = Buffer(options.write_size, static_cast<uint8_t>(i + 1));
  }

  for (uint32_t i = 0; i < num_clients; ++i) {
    host.AddClient(
        "fio" + std::to_string(i),
        [&stack, &result, &options, states, i, end_ns] {
          ClientState& st = (*states)[i];
          if (st.ino == kInvalidInode) {
            auto ino = stack.fs().Create("/fio_" + std::to_string(i));
            CCNVME_CHECK(ino.ok()) << ino.status().ToString();
            st.ino = *ino;
          }
          if (stack.sim().now() >= end_ns) {
            return false;
          }
          const uint64_t op_start = stack.sim().now();
          Status s = stack.fs().Write(st.ino, st.offset, st.data);
          CCNVME_CHECK(s.ok()) << s.ToString();
          switch (options.sync_mode) {
            case SyncMode::kFsync:
              s = stack.fs().Fsync(st.ino);
              break;
            case SyncMode::kFatomic:
              s = stack.fs().Fatomic(st.ino);
              break;
            case SyncMode::kFdataatomic:
              s = stack.fs().Fdataatomic(st.ino);
              break;
          }
          CCNVME_CHECK(s.ok()) << s.ToString();
          result.latency_ns.Add(stack.sim().now() - op_start);
          result.ops++;
          st.offset += options.write_size;
          if (st.offset + options.write_size > options.max_file_bytes) {
            st.offset = 0;
          }
          return true;
        });
  }
  host.Run();
  result.elapsed_ns = stack.sim().now() - start_ns;
  return result;
}

}  // namespace ccnvme

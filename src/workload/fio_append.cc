#include "src/workload/fio_append.h"

#include "src/common/logging.h"

namespace ccnvme {

FioResult RunFioAppend(StorageStack& stack, const FioOptions& options) {
  FioResult result;
  const uint64_t start_ns = stack.sim().now();
  const uint64_t end_ns = start_ns + options.duration_ns;
  int finished = 0;

  for (int t = 0; t < options.num_threads; ++t) {
    const uint16_t queue = static_cast<uint16_t>(t % stack.config().num_queues);
    stack.Spawn("fio" + std::to_string(t), [&, t] {
      const std::string path = "/fio_" + std::to_string(t);
      auto ino = stack.fs().Create(path);
      CCNVME_CHECK(ino.ok()) << ino.status().ToString();
      const Buffer data(options.write_size, static_cast<uint8_t>(t + 1));
      uint64_t offset = 0;
      while (stack.sim().now() < end_ns) {
        const uint64_t op_start = stack.sim().now();
        Status st = stack.fs().Write(*ino, offset, data);
        CCNVME_CHECK(st.ok()) << st.ToString();
        switch (options.sync_mode) {
          case SyncMode::kFsync:
            st = stack.fs().Fsync(*ino);
            break;
          case SyncMode::kFatomic:
            st = stack.fs().Fatomic(*ino);
            break;
          case SyncMode::kFdataatomic:
            st = stack.fs().Fdataatomic(*ino);
            break;
        }
        CCNVME_CHECK(st.ok()) << st.ToString();
        result.latency_ns.Add(stack.sim().now() - op_start);
        result.ops++;
        offset += options.write_size;
        if (offset + options.write_size > options.max_file_bytes) {
          offset = 0;
        }
      }
      finished++;
    }, queue);
  }
  stack.sim().Run();
  CCNVME_CHECK_EQ(finished, options.num_threads);
  result.elapsed_ns = stack.sim().now() - start_ns;
  return result;
}

}  // namespace ccnvme

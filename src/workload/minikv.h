// MiniKV: a RocksDB-flavoured LSM key-value store used to reproduce the
// db_bench `fillsync` experiment (§7.4, Figure 12(b)).
//
// Architecture (the parts that matter for fillsync):
//   * every Put appends a WAL record and syncs it (WriteOptions.sync=true);
//   * concurrent writers use leader-based group commit: one leader batches
//     all queued records into a single WAL append + one sync, exactly like
//     RocksDB's write group;
//   * an in-memory memtable absorbs the writes; when it exceeds its budget
//     it is flushed to an immutable SST file and the WAL is rotated.
// CPU costs for key hashing/memtable insertion are modeled so the workload
// is CPU- and I/O-intensive like the real system.
#ifndef SRC_WORKLOAD_MINIKV_H_
#define SRC_WORKLOAD_MINIKV_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/stack.h"

namespace ccnvme {

// Where MiniKV's durability comes from.
//   kFs:    the LSM engine above — WAL append + sync (group commit),
//           memtable, SST flushes — over a mounted file system.
//   kKvSsd: the device-native path — every operation is ONE NVMe KV
//           command against the KV-SSD (config.kv.enabled stacks); the
//           device's shadow-commit protocol replaces WAL, memtable and
//           SSTs entirely, so completion IS durability.
enum class MiniKvBackend { kFs, kKvSsd };

struct MiniKvOptions {
  MiniKvBackend backend = MiniKvBackend::kFs;
  uint32_t value_size = 1024;      // db_bench: 1024-byte values
  uint32_t key_size = 16;          // db_bench: 16-byte keys
  uint64_t memtable_bytes = 1 << 20;
  // Sync mode for the WAL: kFsync matches RocksDB fillsync; kFdataatomic is
  // the MQFS-A variant enabled by ccNVMe.
  SyncMode wal_sync = SyncMode::kFsync;
  uint64_t kv_cpu_ns = 900;  // user-space CPU per Put (memtable, encoding)
};

class MiniKv {
 public:
  MiniKv(StorageStack* stack, const MiniKvOptions& options)
      : stack_(stack), options_(options), mu_(&stack->sim()), leader_cv_(&stack->sim()) {}

  // Creates the WAL and directories (kFs) or checks the KV path (kKvSsd).
  // Call from an actor.
  Status Open();
  // Durable write: WAL append + sync via group commit (kFs), or one NVMe
  // KV Store on the calling actor's queue (kKvSsd).
  Status Put(const std::string& key, const std::string& value);
  // Reads from the memtable or the SSTs (kFs) / one KV Retrieve (kKvSsd).
  Result<std::string> Get(const std::string& key);
  // Durable delete: a tombstone WAL record + memtable tombstone (kFs,
  // vlen = 0xFFFFFFFF in the on-disk records) or one KV Delete (kKvSsd).
  Status Delete(const std::string& key);
  Result<bool> Exist(const std::string& key);
  // All live keys, sorted (kFs: memtable + SSTs merged, tombstones win).
  Result<std::vector<std::string>> ListKeys();

  uint64_t puts() const { return puts_; }
  uint64_t wal_syncs() const { return wal_syncs_; }
  uint64_t flushes() const { return flushes_; }

 private:
  struct Writer {
    explicit Writer(Simulator* sim) : done(sim) {}
    std::string record;
    SimCompletion done;
    Status result;
  };

  // Shared fs-backend write path for Put and Delete (tombstone = nullopt).
  Status WriteFsRecord(const std::string& key, const std::string* value);
  Status AppendWalBatch(const Buffer& batch);
  Status MaybeFlushMemtable();
  // Tombstones encode vlen = kTombstoneLen and carry no value bytes.
  static constexpr uint32_t kTombstoneLen = 0xFFFFFFFFu;
  static std::string EncodeRecord(const std::string& key, const std::string* value);

  StorageStack* stack_;
  MiniKvOptions options_;
  SimMutex mu_;
  SimCondVar leader_cv_;
  bool leader_active_ = false;
  std::vector<std::shared_ptr<Writer>> queue_;

  InodeNum wal_ino_ = kInvalidInode;
  uint64_t wal_offset_ = 0;
  int wal_epoch_ = 0;
  // nullopt = tombstone (the key is deleted; shadows older SST entries).
  std::map<std::string, std::optional<std::string>> memtable_;
  uint64_t memtable_bytes_ = 0;
  int next_sst_ = 0;
  // Newest SST first: lookup order mirrors LSM level-0.
  std::vector<std::string> ssts_;

  uint64_t puts_ = 0;
  uint64_t wal_syncs_ = 0;
  uint64_t flushes_ = 0;
};

struct FillsyncOptions {
  int num_threads = 24;           // db_bench: 24 threads
  uint64_t duration_ns = 30'000'000;
  MiniKvOptions kv;
  uint64_t seed = 7;
  // 0 = unbounded random keys (the db_bench default). Non-zero bounds the
  // key population so capacity-limited backends (the KV-SSD's directory and
  // LPN space) see overwrite churn instead of unbounded growth — that churn
  // is what makes GC and write amplification observable.
  uint64_t key_space = 0;
};

struct FillsyncResult {
  uint64_t ops = 0;
  uint64_t elapsed_ns = 0;
  double Kiops() const {
    return elapsed_ns == 0
               ? 0.0
               : static_cast<double>(ops) * 1e9 / static_cast<double>(elapsed_ns) / 1e3;
  }
};

FillsyncResult RunFillsync(StorageStack& stack, const FillsyncOptions& options);

}  // namespace ccnvme

#endif  // SRC_WORKLOAD_MINIKV_H_

// FIO-style append+fsync workload (the paper's microbenchmark: "each
// performs 4 KB append writes to its private file followed by fsync").
// Used by Figure 2 (motivation), Figure 11 (file-system performance) and
// Figure 13 (ablation).
#ifndef SRC_WORKLOAD_FIO_APPEND_H_
#define SRC_WORKLOAD_FIO_APPEND_H_

#include <cstdint>

#include "src/common/stats.h"
#include "src/harness/stack.h"

namespace ccnvme {

struct FioOptions {
  // Hardware contexts of the host model (how many clients may be inside the
  // kernel/device concurrently). With the defaults below this is also the
  // client count, reproducing the historical "one actor per thread" runs
  // byte-identically.
  int num_threads = 1;
  uint32_t write_size = 4096;
  SyncMode sync_mode = SyncMode::kFsync;
  uint64_t duration_ns = 30'000'000;  // 30 ms of simulated time
  // Restart appends from offset 0 once a file reaches this size (keeps the
  // simulated files within the inode's mapping capacity).
  uint64_t max_file_bytes = 4ull << 20;
  // --- host model (src/harness/host_model.h) ------------------------------
  // Simulated host cores; every context of core c submits on hardware queue
  // c % num_queues. 0 = min(num_threads, num_queues), the legacy mapping.
  uint16_t num_cores = 0;
  // Concurrent clients multiplexed over the contexts (each appends to its
  // own file). 0 = num_threads, i.e. no multiplexing.
  uint32_t num_clients = 0;
  // CPU charge when a context switches between clients (0 = free, legacy).
  uint64_t context_switch_ns = 0;
};

struct FioResult {
  uint64_t ops = 0;
  uint64_t elapsed_ns = 0;
  Histogram latency_ns;

  double Iops() const {
    return elapsed_ns == 0 ? 0.0 : static_cast<double>(ops) * 1e9 / static_cast<double>(elapsed_ns);
  }
  double ThroughputMBps(uint32_t write_size) const {
    return Iops() * write_size / 1e6;
  }
  double ThroughputKiops() const { return Iops() / 1e3; }
};

// Runs the workload on a mounted stack; returns aggregate results.
FioResult RunFioAppend(StorageStack& stack, const FioOptions& options);

}  // namespace ccnvme

#endif  // SRC_WORKLOAD_FIO_APPEND_H_

// FIO-style append+fsync workload (the paper's microbenchmark: "each
// performs 4 KB append writes to its private file followed by fsync").
// Used by Figure 2 (motivation), Figure 11 (file-system performance) and
// Figure 13 (ablation).
#ifndef SRC_WORKLOAD_FIO_APPEND_H_
#define SRC_WORKLOAD_FIO_APPEND_H_

#include <cstdint>

#include "src/common/stats.h"
#include "src/harness/stack.h"

namespace ccnvme {

struct FioOptions {
  int num_threads = 1;
  uint32_t write_size = 4096;
  SyncMode sync_mode = SyncMode::kFsync;
  uint64_t duration_ns = 30'000'000;  // 30 ms of simulated time
  // Restart appends from offset 0 once a file reaches this size (keeps the
  // simulated files within the inode's mapping capacity).
  uint64_t max_file_bytes = 4ull << 20;
};

struct FioResult {
  uint64_t ops = 0;
  uint64_t elapsed_ns = 0;
  Histogram latency_ns;

  double Iops() const {
    return elapsed_ns == 0 ? 0.0 : static_cast<double>(ops) * 1e9 / static_cast<double>(elapsed_ns);
  }
  double ThroughputMBps(uint32_t write_size) const {
    return Iops() * write_size / 1e6;
  }
  double ThroughputKiops() const { return Iops() / 1e3; }
};

// Runs the workload on a mounted stack; returns aggregate results.
FioResult RunFioAppend(StorageStack& stack, const FioOptions& options);

}  // namespace ccnvme

#endif  // SRC_WORKLOAD_FIO_APPEND_H_

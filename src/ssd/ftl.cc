#include "src/ssd/ftl.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/trace/trace_context.h"
#include "src/trace/tracer.h"

namespace ccnvme {

namespace {
constexpr uint64_t kPageBytes = 4096;
}  // namespace

Ftl::Ftl(Simulator* sim, FtlEnv* env, const FtlConfig& config)
    : sim_(sim), env_(env), config_(config) {
  CCNVME_CHECK(config_.pages_per_block > 0);
  CCNVME_CHECK(config_.flash_pages % config_.pages_per_block == 0)
      << "flash_pages must be a whole number of erase blocks";
  CCNVME_CHECK(config_.map_entries_per_segment * 8 == kPageBytes)
      << "one map segment must fill exactly one flash page";
  num_blocks_ = static_cast<uint32_t>(config_.flash_pages / config_.pages_per_block);
  num_segments_ = static_cast<uint32_t>(
      (config_.total_lpns + config_.map_entries_per_segment - 1) /
      config_.map_entries_per_segment);
  CCNVME_CHECK(config_.map_cache_segments > 0);
  CCNVME_CHECK(num_blocks_ > config_.gc_free_blocks_low + 1)
      << "geometry leaves no usable blocks above the GC reserve";
  pages_.resize(config_.flash_pages);
  blocks_.resize(num_blocks_);
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    free_blocks_.push_back(b);
  }
  gtd_.assign(num_segments_, kFtlUnmapped);
  for (uint64_t lpn = 0; lpn < config_.total_lpns; ++lpn) {
    free_lpns_.insert(lpn);
  }
}

// --- logical space ---------------------------------------------------------

uint64_t Ftl::AllocLpnRun(uint32_t n) {
  if (n == 0) {
    return kFtlUnmapped;
  }
  uint64_t run_start = kFtlUnmapped;
  uint32_t run_len = 0;
  for (uint64_t lpn : free_lpns_) {
    if (run_len != 0 && lpn == run_start + run_len) {
      run_len++;
    } else {
      run_start = lpn;
      run_len = 1;
    }
    if (run_len == n) {
      for (uint64_t i = 0; i < n; ++i) {
        free_lpns_.erase(run_start + i);
      }
      return run_start;
    }
  }
  return kFtlUnmapped;
}

void Ftl::FreeLpn(uint64_t lpn) { free_lpns_.insert(lpn); }

// --- page-state helpers ----------------------------------------------------

void Ftl::MarkValid(uint64_t ppn, uint64_t lpn) {
  Page& p = pages_[ppn];
  CCNVME_CHECK(p.state != PageState::kValid) << "double-program of ppn " << ppn;
  p.state = PageState::kValid;
  p.lpn = lpn;
  blocks_[ppn / config_.pages_per_block].valid++;
}

void Ftl::MarkInvalid(uint64_t ppn) {
  Page& p = pages_[ppn];
  if (p.state == PageState::kValid) {
    blocks_[ppn / config_.pages_per_block].valid--;
  }
  p.state = PageState::kInvalid;
  p.lpn = kFtlUnmapped;
}

// --- allocation ------------------------------------------------------------

void Ftl::OpenNextBlock() {
  CCNVME_CHECK(!free_blocks_.empty()) << "FTL out of free blocks";
  open_block_ = free_blocks_.front();
  free_blocks_.pop_front();
  Block& blk = blocks_[open_block_];
  blk.free = false;
  if (!blk.erased) {
    // Deferred erase: the block was reclaimed logically at attach (or GC
    // completed before a crash erased it); charge the erase on first use.
    env_->EraseWait();
    blk.erased = true;
  }
  block_open_ = true;
  write_ptr_ = 0;
}

uint64_t Ftl::AllocSinglePage() {
  if (!block_open_ || write_ptr_ == config_.pages_per_block) {
    OpenNextBlock();
  }
  const uint64_t ppn =
      static_cast<uint64_t>(open_block_) * config_.pages_per_block + write_ptr_;
  write_ptr_++;
  return ppn;
}

uint64_t Ftl::AllocRun(uint32_t n) {
  CCNVME_CHECK(n > 0 && n <= config_.pages_per_block)
      << "value run of " << n << " pages exceeds one erase block";
  MaybeGc();
  if (!block_open_ || write_ptr_ + n > config_.pages_per_block) {
    // The run does not fit: close the block, wasting the tail pages (they
    // were never programmed; count them invalid so GC can reclaim them).
    if (block_open_) {
      for (uint32_t i = write_ptr_; i < config_.pages_per_block; ++i) {
        const uint64_t ppn =
            static_cast<uint64_t>(open_block_) * config_.pages_per_block + i;
        pages_[ppn].state = PageState::kInvalid;
      }
    }
    if (free_blocks_.empty()) {
      return kFtlUnmapped;  // device full even after GC
    }
    OpenNextBlock();
  }
  const uint64_t ppn =
      static_cast<uint64_t>(open_block_) * config_.pages_per_block + write_ptr_;
  write_ptr_ += n;
  return ppn;
}

void Ftl::DiscardRun(uint64_t ppn, uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) {
    MarkInvalid(ppn + i);
  }
}

// --- map cache -------------------------------------------------------------

Ftl::Frame& Ftl::GetFrame(uint32_t seg, bool count_stats) {
  CCNVME_CHECK(seg < num_segments_);
  auto it = frames_.find(seg);
  if (it != frames_.end()) {
    if (count_stats) {
      map_hits_++;
    }
    lru_.remove(seg);
    lru_.push_front(seg);
    return it->second;
  }
  // Miss: evict the LRU frame if the cache is full. In attach mode the
  // cache grows unbounded instead (FinishAttach trims it) — an eviction
  // writeback would allocate flash pages before liveness is rebuilt.
  if (!attach_mode_ && frames_.size() >= config_.map_cache_segments) {
    const uint32_t victim = lru_.back();
    lru_.pop_back();
    auto vit = frames_.find(victim);
    CCNVME_CHECK(vit != frames_.end());
    if (vit->second.dirty) {
      WritebackSegment(victim, vit->second);
    }
    frames_.erase(vit);
  }
  Frame& frame = frames_[seg];
  frame.entries.assign(config_.map_entries_per_segment, kFtlUnmapped);
  if (gtd_[seg] != kFtlUnmapped) {
    // Demand-load the segment's flash copy; the media read is charged to
    // the foreground command and surfaced as wait.ftl_map_miss blame.
    Tracer* tracer = sim_->tracer();
    const uint64_t t0 = sim_->now();
    Buffer raw;
    {
      ScopedSpan span(tracer, TracePoint::kFtlMapLoad, seg);
      env_->FlashRead(gtd_[seg], &raw);
    }
    if (tracer != nullptr) {
      tracer->WaitEdgeEvent(WaitEdge::kFtlMapMiss, t0, sim_->now(), seg);
    }
    CCNVME_CHECK(raw.size() == kPageBytes);
    for (uint32_t i = 0; i < config_.map_entries_per_segment; ++i) {
      frame.entries[i] = GetU64(raw, i * 8);
    }
    map_loads_++;
  }
  lru_.push_front(seg);
  return frame;
}

void Ftl::WritebackSegment(uint32_t seg, Frame& frame) {
  ScopedSpan span(sim_->tracer(), TracePoint::kFtlMapWriteback, seg);
  const uint64_t ppn = AllocSinglePage();
  Buffer raw(kPageBytes);
  for (uint32_t i = 0; i < config_.map_entries_per_segment; ++i) {
    PutU64(raw, i * 8, frame.entries[i]);
  }
  env_->FlashWrite(ppn, raw);
  media_pages_written_++;
  const uint64_t old = gtd_[seg];
  gtd_[seg] = ppn;
  env_->PersistGtd(seg, ppn);
  if (old != kFtlUnmapped) {
    MarkInvalid(old);
  }
  MarkValid(ppn, kFtlMapLpnBase + seg);
  frame.dirty = false;
  map_writebacks_++;
}

void Ftl::MapInstall(uint64_t lpn, uint64_t ppn) {
  CCNVME_CHECK(lpn < config_.total_lpns);
  const uint32_t seg = static_cast<uint32_t>(lpn / config_.map_entries_per_segment);
  Frame& frame = GetFrame(seg, /*count_stats=*/true);
  uint64_t& entry = frame.entries[lpn % config_.map_entries_per_segment];
  if (entry != kFtlUnmapped) {
    MarkInvalid(entry);
  }
  entry = ppn;
  frame.dirty = true;
  MarkValid(ppn, lpn);
  media_pages_written_++;  // the data page program itself
}

uint64_t Ftl::MapLookup(uint64_t lpn) {
  CCNVME_CHECK(lpn < config_.total_lpns);
  const uint32_t seg = static_cast<uint32_t>(lpn / config_.map_entries_per_segment);
  Frame& frame = GetFrame(seg, /*count_stats=*/true);
  return frame.entries[lpn % config_.map_entries_per_segment];
}

void Ftl::MapErase(uint64_t lpn) {
  CCNVME_CHECK(lpn < config_.total_lpns);
  const uint32_t seg = static_cast<uint32_t>(lpn / config_.map_entries_per_segment);
  Frame& frame = GetFrame(seg, /*count_stats=*/true);
  uint64_t& entry = frame.entries[lpn % config_.map_entries_per_segment];
  if (entry == kFtlUnmapped) {
    return;
  }
  MarkInvalid(entry);
  entry = kFtlUnmapped;
  frame.dirty = true;
}

void Ftl::CheckpointMap() {
  // std::map iteration order = segment order: deterministic writeback.
  for (auto& [seg, frame] : frames_) {
    if (frame.dirty) {
      WritebackSegment(seg, frame);
    }
  }
  env_->OnMapCheckpointed();
}

// --- garbage collection ----------------------------------------------------

void Ftl::MaybeGc() {
  while (free_blocks_.size() <= config_.gc_free_blocks_low) {
    // Greedy victim: most invalid pages, lowest block id on ties. Only
    // closed blocks qualify (the open block is the migration destination).
    uint32_t victim = num_blocks_;
    uint32_t best_invalid = 0;
    for (uint32_t b = 0; b < num_blocks_; ++b) {
      if (blocks_[b].free || (block_open_ && b == open_block_)) {
        continue;
      }
      uint32_t invalid = 0;
      for (uint32_t i = 0; i < config_.pages_per_block; ++i) {
        const Page& p = pages_[static_cast<uint64_t>(b) * config_.pages_per_block + i];
        if (p.state == PageState::kInvalid) {
          invalid++;
        }
      }
      if (invalid > best_invalid) {
        best_invalid = invalid;
        victim = b;
      }
    }
    if (victim == num_blocks_) {
      return;  // nothing reclaimable; AllocRun reports full if it matters
    }
    GcOnce(victim);
  }
}

void Ftl::GcOnce(uint32_t victim) {
  Tracer* tracer = sim_->tracer();
  const uint64_t t0 = sim_->now();
  gc_in_progress_ = true;
  {
    ScopedSpan span(tracer, TracePoint::kFtlGc, victim);
    // 1. Migrate live pages (data and map segments alike) out-of-place.
    for (uint32_t i = 0; i < config_.pages_per_block; ++i) {
      const uint64_t src =
          static_cast<uint64_t>(victim) * config_.pages_per_block + i;
      if (pages_[src].state != PageState::kValid) {
        continue;
      }
      const uint64_t lpn = pages_[src].lpn;
      Buffer data;
      env_->FlashRead(src, &data);
      const uint64_t dst = AllocSinglePage();
      env_->FlashWrite(dst, data);
      media_pages_written_++;
      if (lpn >= kFtlMapLpnBase) {
        // A map-segment page: move the GTD root. If the segment is also
        // resident its RAM copy stays authoritative; the flash copy we
        // just moved is its last checkpoint.
        const uint32_t seg = static_cast<uint32_t>(lpn - kFtlMapLpnBase);
        MarkInvalid(src);
        gtd_[seg] = dst;
        env_->PersistGtd(seg, dst);
        MarkValid(dst, lpn);
      } else {
        MarkInvalid(src);
        const uint32_t seg =
            static_cast<uint32_t>(lpn / config_.map_entries_per_segment);
        Frame& frame = GetFrame(seg, /*count_stats=*/false);
        frame.entries[lpn % config_.map_entries_per_segment] = dst;
        frame.dirty = true;
        MarkValid(dst, lpn);
      }
      gc_migrated_pages_++;
    }
    // 2. Checkpoint the map so nothing durable references the victim.
    CheckpointMap();
    // 3. Erase. (The model never clears media bytes — stale data stays
    // readable until the block is re-programmed, which matches flash and
    // keeps every pre-erase crash state recoverable.)
    env_->EraseWait();
    for (uint32_t i = 0; i < config_.pages_per_block; ++i) {
      Page& p = pages_[static_cast<uint64_t>(victim) * config_.pages_per_block + i];
      p.state = PageState::kFree;
      p.lpn = kFtlUnmapped;
    }
    Block& blk = blocks_[victim];
    CCNVME_CHECK(blk.valid == 0);
    blk.free = true;
    blk.erased = true;
    free_blocks_.push_back(victim);
    gc_runs_++;
  }
  gc_in_progress_ = false;
  if (tracer != nullptr) {
    tracer->WaitEdgeEvent(WaitEdge::kFtlGc, t0, sim_->now(), victim);
  }
}

// --- attach-time recovery --------------------------------------------------

void Ftl::AttachLoadGtd() {
  for (uint32_t seg = 0; seg < num_segments_; ++seg) {
    const uint64_t ppn = env_->LoadGtd(seg);
    gtd_[seg] = ppn;
    if (ppn != kFtlUnmapped && ppn < config_.flash_pages &&
        pages_[ppn].state == PageState::kFree) {
      MarkValid(ppn, kFtlMapLpnBase + seg);
    }
  }
}

void Ftl::MapSetForReplay(uint64_t lpn, uint64_t ppn) {
  if (lpn >= config_.total_lpns) {
    return;  // corrupt shadow; the directory walk will flag the entry
  }
  const uint32_t seg = static_cast<uint32_t>(lpn / config_.map_entries_per_segment);
  Frame& frame = GetFrame(seg, /*count_stats=*/false);
  frame.entries[lpn % config_.map_entries_per_segment] = ppn;
  frame.dirty = true;
}

void Ftl::MapClearUnclaimed(uint64_t lpn) {
  CCNVME_CHECK(attach_mode_) << "orphan sweep is an attach-time operation";
  if (lpn >= config_.total_lpns) {
    return;
  }
  const uint32_t seg = static_cast<uint32_t>(lpn / config_.map_entries_per_segment);
  Frame& frame = GetFrame(seg, /*count_stats=*/false);
  uint64_t& entry = frame.entries[lpn % config_.map_entries_per_segment];
  if (entry != kFtlUnmapped) {
    entry = kFtlUnmapped;
    frame.dirty = true;
  }
}

bool Ftl::MarkLive(uint64_t lpn, uint64_t ppn) {
  if (ppn >= config_.flash_pages || pages_[ppn].state == PageState::kValid) {
    return false;
  }
  MarkValid(ppn, lpn);
  free_lpns_.erase(lpn);
  return true;
}

void Ftl::FinishAttach() {
  free_blocks_.clear();
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    Block& blk = blocks_[b];
    if (blk.valid == 0) {
      // Nothing live: back to the free pool. We cannot tell from a crash
      // image whether the block still holds stale data, so conservatively
      // charge the erase on first open.
      for (uint32_t i = 0; i < config_.pages_per_block; ++i) {
        Page& p = pages_[static_cast<uint64_t>(b) * config_.pages_per_block + i];
        p.state = PageState::kFree;
        p.lpn = kFtlUnmapped;
      }
      blk.free = true;
      blk.erased = false;
    } else {
      // Live pages present: closed block; every non-valid page is stale.
      for (uint32_t i = 0; i < config_.pages_per_block; ++i) {
        Page& p = pages_[static_cast<uint64_t>(b) * config_.pages_per_block + i];
        if (p.state != PageState::kValid) {
          p.state = PageState::kInvalid;
          p.lpn = kFtlUnmapped;
        }
      }
      blk.free = false;
      blk.erased = false;
    }
  }
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    if (blocks_[b].free) {
      free_blocks_.push_back(b);
    }
  }
  block_open_ = false;
  write_ptr_ = config_.pages_per_block;
  // Leave attach mode and trim the segment cache back to capacity; dirty
  // victims write back now that allocation is safe.
  attach_mode_ = false;
  while (frames_.size() > config_.map_cache_segments) {
    const uint32_t victim = lru_.back();
    lru_.pop_back();
    auto it = frames_.find(victim);
    CCNVME_CHECK(it != frames_.end());
    if (it->second.dirty) {
      WritebackSegment(victim, it->second);
    }
    frames_.erase(it);
  }
}

}  // namespace ccnvme

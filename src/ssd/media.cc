#include "src/ssd/media.h"

#include <cstring>

#include "src/common/logging.h"

namespace ccnvme {

MediaStore::MediaStore(uint64_t capacity_bytes, uint32_t block_size)
    : capacity_(capacity_bytes), block_size_(block_size) {
  CCNVME_CHECK_GT(block_size_, 0u);
  CCNVME_CHECK_EQ(capacity_ % block_size_, 0u);
}

void MediaStore::CheckRange(uint64_t offset, size_t size) const {
  CCNVME_CHECK_EQ(offset % block_size_, 0u) << "unaligned media offset";
  CCNVME_CHECK_EQ(size % block_size_, 0u) << "unaligned media size";
  CCNVME_CHECK_LE(offset + size, capacity_) << "media access out of range";
}

void MediaStore::ApplyTo(BlockMap& view, uint64_t offset, std::span<const uint8_t> data) {
  const uint64_t first_block = offset / block_size_;
  const uint64_t num_blocks = data.size() / block_size_;
  for (uint64_t i = 0; i < num_blocks; ++i) {
    Buffer& blk = view[first_block + i];
    blk.resize(block_size_);
    std::memcpy(blk.data(), data.data() + i * block_size_, block_size_);
  }
}

void MediaStore::ReadFrom(const BlockMap& view, uint64_t offset, std::span<uint8_t> out) const {
  const uint64_t first_block = offset / block_size_;
  const uint64_t num_blocks = out.size() / block_size_;
  for (uint64_t i = 0; i < num_blocks; ++i) {
    auto it = view.find(first_block + i);
    uint8_t* dst = out.data() + i * block_size_;
    if (it == view.end()) {
      std::memset(dst, 0, block_size_);
    } else {
      std::memcpy(dst, it->second.data(), block_size_);
    }
  }
}

void MediaStore::WriteDurable(uint64_t offset, std::span<const uint8_t> data) {
  CheckRange(offset, data.size());
  ApplyTo(current_, offset, data);
  ApplyTo(durable_, offset, data);
}

uint64_t MediaStore::WriteCached(uint64_t offset, std::span<const uint8_t> data) {
  CheckRange(offset, data.size());
  ApplyTo(current_, offset, data);
  PendingWrite pw;
  pw.seq = next_seq_++;
  pw.offset = offset;
  pw.data.assign(data.begin(), data.end());
  pending_bytes_ += data.size();
  pending_.push_back(std::move(pw));
  return pending_.back().seq;
}

void MediaStore::Read(uint64_t offset, std::span<uint8_t> out) const {
  CheckRange(offset, out.size());
  ReadFrom(current_, offset, out);
}

void MediaStore::ReadDurable(uint64_t offset, std::span<uint8_t> out) const {
  CheckRange(offset, out.size());
  ReadFrom(durable_, offset, out);
}

void MediaStore::Flush() {
  for (const PendingWrite& pw : pending_) {
    ApplyTo(durable_, pw.offset, pw.data);
  }
  pending_.clear();
  pending_bytes_ = 0;
}

void MediaStore::PowerCut(const std::set<uint64_t>& survivors) {
  for (const PendingWrite& pw : pending_) {
    if (survivors.count(pw.seq) != 0) {
      ApplyTo(durable_, pw.offset, pw.data);
    }
  }
  pending_.clear();
  pending_bytes_ = 0;
  current_ = durable_;
}

}  // namespace ccnvme

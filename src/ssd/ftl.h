// Demand-based flash translation layer under the SsdModel service model.
//
// The FTL owns the physical geometry of one device: |flash_pages| 4KB
// physical pages grouped into erase blocks of |pages_per_block|. Logical
// pages (LPNs) map to physical pages (PPNs) through a page-level L2P table
// that is itself paged: the table is cut into fixed-size segments (512
// entries = one 4KB flash page), only |map_cache_segments| of which are
// resident in controller RAM at a time. A lookup that misses the cache
// evicts the LRU segment (writing it back out-of-place if dirty) and loads
// the victim's flash copy — a real media read whose latency is charged to
// the foreground command and emitted as a `wait.ftl_map_miss` edge.
//
// Writes are out-of-place: AllocRun hands out physically contiguous pages
// from the open erase block, closing it (and wasting the tail) when a run
// does not fit. When the free-block pool drops to |gc_free_blocks_low|,
// greedy victim-selection garbage collection runs inline: the block with
// the most invalid pages is chosen, its valid pages (data and map pages
// alike) migrate to the open block, the map is checkpointed so no durable
// state references the victim, and only then is the block erased. The whole
// stall is emitted as a `wait.ftl_gc` edge so GC becomes first-class
// profiler blame on the foreground op that triggered it.
//
// The FTL is media-agnostic: flash I/O, erase latency, and map-root (GTD)
// persistence go through FtlEnv, implemented by the KV-SSD front-end
// (src/nvme/kv_ssd) over SsdModel + the controller PMR. Everything here
// runs under the caller's lock on a simulator actor; all media waits are
// virtual-time blocking calls.
#ifndef SRC_SSD_FTL_H_
#define SRC_SSD_FTL_H_

#include <cstdint>
#include <list>
#include <map>
#include <set>
#include <vector>

#include "src/common/bytes.h"
#include "src/sim/simulator.h"

namespace ccnvme {

// L2P entry / PPN sentinel: "no mapping" / "no page".
inline constexpr uint64_t kFtlUnmapped = ~0ull;
// page_state lpn tag for pages that hold map segments, not user data:
// lpn = kFtlMapLpnBase + segment index.
inline constexpr uint64_t kFtlMapLpnBase = 1ull << 40;

struct FtlConfig {
  uint64_t flash_pages = 4096;          // physical 4KB pages on the device
  uint32_t pages_per_block = 64;        // erase-block size in pages
  uint64_t total_lpns = 3072;           // logical space (< physical: OP area)
  uint32_t map_entries_per_segment = 512;  // 512 x 8B = one 4KB flash page
  uint32_t map_cache_segments = 4;      // resident L2P segment frames
  uint32_t gc_free_blocks_low = 2;      // GC when free pool <= this
};

// Media + map-root services the FTL needs from its host device.
class FtlEnv {
 public:
  virtual ~FtlEnv() = default;
  // Durably persists "segment |seg|'s flash copy lives at |ppn|" (the
  // global translation directory root). Must be durable on return.
  virtual void PersistGtd(uint32_t seg, uint64_t ppn) = 0;
  // Reads the persisted GTD root for |seg| (attach); kFtlUnmapped = none.
  virtual uint64_t LoadGtd(uint32_t seg) = 0;
  // Writes/reads one 4KB flash page. Blocking (virtual-time) media ops.
  virtual bool FlashWrite(uint64_t ppn, const Buffer& data) = 0;
  virtual bool FlashRead(uint64_t ppn, Buffer* out) = 0;
  // Blocks for one erase-block erase.
  virtual void EraseWait() = 0;
  // All dirty map segments + GTD are durable; the host may now advance its
  // checkpoint sequence number (shadow entries at or below it are dead).
  virtual void OnMapCheckpointed() = 0;
};

class Ftl {
 public:
  Ftl(Simulator* sim, FtlEnv* env, const FtlConfig& config);

  // --- geometry -----------------------------------------------------------
  uint32_t num_blocks() const { return num_blocks_; }
  uint32_t num_segments() const { return num_segments_; }
  const FtlConfig& config() const { return config_; }

  // --- logical space ------------------------------------------------------
  // Allocates |n| consecutive free LPNs (lowest run wins, deterministic);
  // kFtlUnmapped if the logical space has no such run.
  uint64_t AllocLpnRun(uint32_t n);
  void FreeLpn(uint64_t lpn);

  // --- foreground data path ----------------------------------------------
  // Allocates |n| physically contiguous pages from the open erase block,
  // running GC first if the free pool is low. The caller writes the pages
  // (env FlashWrite) and then installs mappings. kFtlUnmapped = device full.
  uint64_t AllocRun(uint32_t n);
  // Abandons an allocated-but-unmapped run (media error mid-write): the
  // pages become invalid so GC can reclaim them.
  void DiscardRun(uint64_t ppn, uint32_t n);
  // Sets lpn -> ppn, invalidating the previous physical page if the LPN was
  // mapped. Demand-loads the owning segment; marks it dirty.
  void MapInstall(uint64_t lpn, uint64_t ppn);
  // Returns the PPN for |lpn| (demand-loading its segment), or kFtlUnmapped.
  uint64_t MapLookup(uint64_t lpn);
  // Unmaps |lpn|, invalidating its physical page. No-op if unmapped.
  void MapErase(uint64_t lpn);
  // Writes back every dirty resident segment + its GTD entry, then tells
  // the env (which advances the shadow checkpoint).
  void CheckpointMap();

  // --- attach-time recovery ----------------------------------------------
  // Enters attach mode: the segment cache grows unbounded (no evictions,
  // hence no flash writes) until FinishAttach, because until liveness is
  // rebuilt an allocation could land on a block holding live pages.
  void BeginAttach() { attach_mode_ = true; }
  // Loads the GTD through the env and marks referenced map pages valid.
  void AttachLoadGtd();
  // Shadow replay: installs lpn -> ppn into the (cached) map WITHOUT page
  // accounting — physical liveness is rebuilt afterwards from the directory.
  void MapSetForReplay(uint64_t lpn, uint64_t ppn);
  // Declares |ppn| live for |lpn| while rebuilding liveness. Also removes
  // |lpn| from the free set. Returns false if |ppn| was already claimed
  // (double-mapped image — a consistency violation the caller reports).
  bool MarkLive(uint64_t lpn, uint64_t ppn);
  // Drops a mapping no live directory entry claims — the residue of an
  // aborted store (replayed shadow, or a mid-store checkpoint, whose commit
  // word never landed). No page accounting: the target was never marked
  // valid, and leaving the stale entry would make a later reallocation of
  // |lpn| invalidate a page it does not own.
  void MapClearUnclaimed(uint64_t lpn);
  // Classifies blocks (free vs full) from the rebuilt page states and
  // leaves the FTL ready for foreground traffic.
  void FinishAttach();

  // --- stats (bench/tools) ------------------------------------------------
  uint64_t host_pages_written() const { return host_pages_written_; }
  uint64_t media_pages_written() const { return media_pages_written_; }
  // Write amplification: media page programs / host page writes.
  double waf() const {
    return host_pages_written_ == 0
               ? 1.0
               : static_cast<double>(media_pages_written_) /
                     static_cast<double>(host_pages_written_);
  }
  uint64_t gc_runs() const { return gc_runs_; }
  uint64_t gc_migrated_pages() const { return gc_migrated_pages_; }
  uint64_t map_loads() const { return map_loads_; }
  uint64_t map_hits() const { return map_hits_; }
  uint64_t map_writebacks() const { return map_writebacks_; }
  uint64_t free_blocks() const { return static_cast<uint64_t>(free_blocks_.size()); }
  uint64_t free_lpns() const { return static_cast<uint64_t>(free_lpns_.size()); }
  // Counts host-visible page programs (data pages the front-end wrote via
  // env->FlashWrite on an AllocRun). Called by the front-end per data page.
  void CountHostPage() { host_pages_written_++; }
  // Per-block valid-page count (ftl_inspect + tests).
  uint32_t block_valid_pages(uint32_t block) const { return blocks_[block].valid; }
  bool block_is_free(uint32_t block) const { return blocks_[block].free; }
  // True while a GC pass is running (front-end uses it to blame overlapped
  // waiters with wait.ftl_gc as well).
  bool gc_in_progress() const { return gc_in_progress_; }

  Ftl(const Ftl&) = delete;
  Ftl& operator=(const Ftl&) = delete;

 private:
  enum class PageState : uint8_t { kFree = 0, kValid, kInvalid };
  struct Page {
    uint64_t lpn = kFtlUnmapped;  // owner LPN while kValid
    PageState state = PageState::kFree;
  };
  struct Block {
    uint32_t valid = 0;  // live pages (data + map)
    bool free = true;    // in the free pool
    bool erased = true;  // no erase charge on first open
  };
  struct Frame {
    std::vector<uint64_t> entries;  // map_entries_per_segment L2P words
    bool dirty = false;
  };

  Frame& GetFrame(uint32_t seg, bool count_stats);
  void WritebackSegment(uint32_t seg, Frame& frame);
  // Single-page allocation for GC migration and map writeback: never
  // recurses into GC (the reserved free pool covers it).
  uint64_t AllocSinglePage();
  void OpenNextBlock();
  void MarkInvalid(uint64_t ppn);
  void MarkValid(uint64_t ppn, uint64_t lpn);
  void MaybeGc();
  void GcOnce(uint32_t victim);

  Simulator* sim_;
  FtlEnv* env_;
  FtlConfig config_;
  uint32_t num_blocks_ = 0;
  uint32_t num_segments_ = 0;

  std::vector<Page> pages_;
  std::vector<Block> blocks_;
  std::list<uint32_t> free_blocks_;  // FIFO: erase order = reuse order
  uint32_t open_block_ = 0;
  uint32_t write_ptr_ = 0;  // next page index inside open_block_
  bool block_open_ = false;

  std::vector<uint64_t> gtd_;        // segment -> flash copy PPN (RAM mirror)
  std::map<uint32_t, Frame> frames_;  // resident segments (sorted: determinism)
  std::list<uint32_t> lru_;           // front = most recent

  std::set<uint64_t> free_lpns_;

  bool attach_mode_ = false;
  bool gc_in_progress_ = false;
  uint64_t host_pages_written_ = 0;
  uint64_t media_pages_written_ = 0;
  uint64_t gc_runs_ = 0;
  uint64_t gc_migrated_pages_ = 0;
  uint64_t map_loads_ = 0;
  uint64_t map_hits_ = 0;
  uint64_t map_writebacks_ = 0;
};

}  // namespace ccnvme

#endif  // SRC_SSD_FTL_H_

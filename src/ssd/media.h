// Persistent media store with volatile write-cache semantics.
//
// The store maintains two views:
//   * the *current* view — what reads observe (newest data, cache included)
//   * the *durable* view — what survives a power cut
// A cached write updates the current view and records a pending entry; Flush
// promotes all pending writes to the durable view. PowerCut discards pending
// writes except an arbitrary survivor subset, modeling the undefined destage
// order of a volatile cache — exactly the reordering space a CrashMonkey-style
// tester must explore.
#ifndef SRC_SSD_MEDIA_H_
#define SRC_SSD_MEDIA_H_

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "src/common/bytes.h"

namespace ccnvme {

class MediaStore {
 public:
  MediaStore(uint64_t capacity_bytes, uint32_t block_size = 4096);

  uint64_t capacity() const { return capacity_; }
  uint32_t block_size() const { return block_size_; }

  // Durable write: current and durable views both updated. Offset and size
  // must be block-aligned.
  void WriteDurable(uint64_t offset, std::span<const uint8_t> data);

  // Cached write: visible to reads immediately, durable only after Flush (or
  // if selected as a power-cut survivor). Returns the pending sequence id.
  uint64_t WriteCached(uint64_t offset, std::span<const uint8_t> data);

  // Reads the current view.
  void Read(uint64_t offset, std::span<uint8_t> out) const;
  // Reads the durable view (what a post-crash mount would see).
  void ReadDurable(uint64_t offset, std::span<uint8_t> out) const;

  // Promotes all pending cached writes to the durable view.
  void Flush();

  struct PendingWrite {
    uint64_t seq;
    uint64_t offset;
    Buffer data;
  };
  const std::vector<PendingWrite>& pending() const { return pending_; }

  // Power loss: applies pending writes whose seq is in |survivors| (in seq
  // order) to the durable view, drops the rest, and resets the current view
  // to the durable one.
  void PowerCut(const std::set<uint64_t>& survivors);
  void PowerCutLoseAll() { PowerCut({}); }

  uint64_t pending_bytes() const { return pending_bytes_; }

  using BlockMap = std::map<uint64_t, Buffer>;  // block index -> block data

  // Crash/remount support: capture the durable view, or install one (a new
  // "device" booting from the bytes that survived a power cut).
  BlockMap SnapshotDurable() const { return durable_; }
  void LoadDurable(BlockMap blocks) {
    durable_ = std::move(blocks);
    current_ = durable_;
    pending_.clear();
    pending_bytes_ = 0;
  }

 private:

  void ApplyTo(BlockMap& view, uint64_t offset, std::span<const uint8_t> data);
  void ReadFrom(const BlockMap& view, uint64_t offset, std::span<uint8_t> out) const;
  void CheckRange(uint64_t offset, size_t size) const;

  uint64_t capacity_;
  uint32_t block_size_;
  BlockMap current_;
  BlockMap durable_;
  std::vector<PendingWrite> pending_;
  uint64_t pending_bytes_ = 0;
  uint64_t next_seq_ = 1;
};

}  // namespace ccnvme

#endif  // SRC_SSD_MEDIA_H_

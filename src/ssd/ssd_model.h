// SSD performance and durability model.
//
// Calibrated against Table 3 of the paper. The service model is:
//   * |channels| parallel media units, each holding a request for the media
//     access latency (this bounds IOPS at channels/latency), then
//   * a serialized backend pipe per direction (this bounds bandwidth).
// For the drives in Table 3 the published 4 KB random IOPS times 4 KB is
// almost exactly the sequential bandwidth, so this two-stage model matches
// both columns simultaneously.
//
// Durability: Optane drives carry power-loss protection (PLP), so completed
// writes are durable and FLUSH is a no-op (the paper exploits this in
// Figure 14: "the FLUSH is ignored by the block layer"). The flash 750 has a
// volatile cache: completed non-FUA writes sit in MediaStore's pending list
// until a FLUSH, and a power cut may destage any subset of them.
#ifndef SRC_SSD_SSD_MODEL_H_
#define SRC_SSD_SSD_MODEL_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/common/rng.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/ssd/media.h"

namespace ccnvme {

struct SsdConfig {
  std::string name;
  uint64_t capacity_bytes = 16ull << 30;
  uint64_t read_bw_bytes_per_sec = 2'000'000'000ull;
  uint64_t write_bw_bytes_per_sec = 2'000'000'000ull;
  uint64_t read_latency_ns = 10'000;
  uint64_t write_latency_ns = 10'000;
  int channels = 6;
  // Volatile write cache present (completions are not durable until FLUSH).
  bool volatile_cache = false;
  // Power-loss protection: cache contents survive a power cut; FLUSH is a
  // no-op for durability purposes.
  bool power_loss_protection = true;
  // Latency of a cache-insert write when the volatile cache absorbs it.
  uint64_t cache_write_latency_ns = 3'000;
  // Fixed cost of a FLUSH command on a volatile-cache drive.
  uint64_t flush_base_ns = 30'000;
  // Media-latency jitter in percent (+/-): real drives' channel conflicts
  // and internal scheduling make command latencies vary, which is what
  // causes out-of-order completions. Deterministic per seed.
  uint32_t latency_jitter_pct = 25;
  uint64_t jitter_seed = 0x5eed;

  // Table 3 presets.
  static SsdConfig Intel750();       // 2015 flash
  static SsdConfig Optane905P();     // 2018 Optane
  static SsdConfig OptaneP5800X();   // 2020 Optane, PCIe 3.0-limited testbed
};

class SsdModel {
 public:
  SsdModel(Simulator* sim, const SsdConfig& config);

  // Media-side service of a write whose payload is already on the device
  // (the controller calls this after the data DMA). Blocks the calling
  // actor for the service time. FUA or flush-less drives write durably.
  // Return false on an injected media error (timing is still charged).
  bool MediaWrite(uint64_t offset, std::span<const uint8_t> data, bool fua);
  bool MediaRead(uint64_t offset, std::span<uint8_t> out);
  void MediaFlush();

  // Fault injection: the next |count| media writes (or reads) fail with a
  // device error; the controller reports a non-zero NVMe status and the
  // stack must surface it cleanly. Returns through Media*'s bool result.
  void InjectWriteErrors(int count) { write_errors_ = count; }
  void InjectReadErrors(int count) { read_errors_ = count; }

  // Simulated power loss: pending cached writes survive only under PLP.
  // With a volatile cache, |survivors| selects which pending writes made it
  // out (crash tests drive this); pass nullptr to lose all of them.
  void PowerCut(const std::set<uint64_t>* survivors);

  MediaStore& media() { return media_; }
  const SsdConfig& config() const { return config_; }

  uint64_t reads_served() const { return reads_served_; }
  uint64_t writes_served() const { return writes_served_; }
  uint64_t flushes_served() const { return flushes_served_; }
  // Busy time of the write backend — used for the paper's I/O-utilization
  // plots (iostat-style "used bandwidth / maximum bandwidth").
  double WriteUtilizationSince(uint64_t window_start_ns) const {
    return write_pipe_.UtilizationSince(window_start_ns);
  }
  void ResetStats();

 private:
  uint64_t JitteredLatency(uint64_t base_ns);

  Simulator* sim_;
  SsdConfig config_;
  MediaStore media_;
  Rng jitter_rng_;
  Resource channels_;
  BandwidthPipe read_pipe_;
  BandwidthPipe write_pipe_;
  uint64_t reads_served_ = 0;
  uint64_t writes_served_ = 0;
  uint64_t flushes_served_ = 0;
  int write_errors_ = 0;
  int read_errors_ = 0;
};

}  // namespace ccnvme

#endif  // SRC_SSD_SSD_MODEL_H_

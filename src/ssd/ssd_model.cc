#include "src/ssd/ssd_model.h"

namespace ccnvme {

SsdConfig SsdConfig::Intel750() {
  SsdConfig c;
  c.name = "Intel 750 (flash, 2015)";
  c.read_bw_bytes_per_sec = 2'200'000'000ull;
  c.write_bw_bytes_per_sec = 950'000'000ull;
  c.read_latency_ns = 15'000;
  c.write_latency_ns = 16'000;
  c.channels = 7;
  c.volatile_cache = true;
  c.power_loss_protection = false;
  c.cache_write_latency_ns = 14'000;
  c.flush_base_ns = 60'000;
  return c;
}

SsdConfig SsdConfig::Optane905P() {
  SsdConfig c;
  c.name = "Intel Optane 905P (2018)";
  c.read_bw_bytes_per_sec = 2'600'000'000ull;
  c.write_bw_bytes_per_sec = 2'200'000'000ull;
  c.read_latency_ns = 5'500;
  c.write_latency_ns = 5'500;
  c.channels = 4;
  c.volatile_cache = false;
  c.power_loss_protection = true;
  return c;
}

SsdConfig SsdConfig::OptaneP5800X() {
  SsdConfig c;
  c.name = "Intel Optane DC P5800X (2020, PCIe3 host)";
  // Table 3 footnote: on the paper's PCIe 3.0 server the drive delivers
  // 3.3 GB/s and ~850K/820K IOPS with 8/9 us kernel-path latency.
  c.read_bw_bytes_per_sec = 3'300'000'000ull;
  c.write_bw_bytes_per_sec = 3'300'000'000ull;
  c.read_latency_ns = 4'000;
  c.write_latency_ns = 4'000;
  c.channels = 5;
  c.volatile_cache = false;
  c.power_loss_protection = true;
  return c;
}

SsdModel::SsdModel(Simulator* sim, const SsdConfig& config)
    : sim_(sim),
      config_(config),
      media_(config.capacity_bytes),
      jitter_rng_(config.jitter_seed),
      channels_(sim, config.name + "/channels", static_cast<uint64_t>(config.channels)),
      read_pipe_(sim, config.name + "/read", config.read_bw_bytes_per_sec),
      write_pipe_(sim, config.name + "/write", config.write_bw_bytes_per_sec) {}

uint64_t SsdModel::JitteredLatency(uint64_t base_ns) {
  if (config_.latency_jitter_pct == 0) {
    return base_ns;
  }
  // Uniform in [1 - j, 1 + j] of the base latency, deterministic per seed.
  const double j = config_.latency_jitter_pct / 100.0;
  const double factor = 1.0 - j + 2.0 * j * jitter_rng_.NextDouble();
  return static_cast<uint64_t>(static_cast<double>(base_ns) * factor);
}

bool SsdModel::MediaWrite(uint64_t offset, std::span<const uint8_t> data, bool fua) {
  writes_served_++;
  channels_.Acquire(1);
  // Media program latency overlaps with the backend transfer: the command
  // finishes when both are done.
  const bool cache_absorbs = config_.volatile_cache && !fua;
  const uint64_t latency = JitteredLatency(cache_absorbs ? config_.cache_write_latency_ns
                                                         : config_.write_latency_ns);
  const uint64_t pipe_done = write_pipe_.ReserveFinishTime(data.size());
  const uint64_t done = std::max(sim_->now() + latency, pipe_done);
  Simulator::Sleep(done - sim_->now());
  channels_.Release(1);
  if (write_errors_ > 0) {
    write_errors_--;
    return false;  // media program failure; nothing written
  }
  // Durability: PLP drives and FUA writes are durable at completion. A
  // volatile-cache non-FUA write is only cached.
  if (config_.volatile_cache && !fua && !config_.power_loss_protection) {
    media_.WriteCached(offset, data);
  } else {
    media_.WriteDurable(offset, data);
  }
  return true;
}

bool SsdModel::MediaRead(uint64_t offset, std::span<uint8_t> out) {
  reads_served_++;
  channels_.Acquire(1);
  const uint64_t latency = JitteredLatency(config_.read_latency_ns);
  const uint64_t pipe_done = read_pipe_.ReserveFinishTime(out.size());
  const uint64_t done = std::max(sim_->now() + latency, pipe_done);
  Simulator::Sleep(done - sim_->now());
  channels_.Release(1);
  if (read_errors_ > 0) {
    read_errors_--;
    return false;  // uncorrectable read error
  }
  media_.Read(offset, out);
  return true;
}

void SsdModel::MediaFlush() {
  flushes_served_++;
  if (!config_.volatile_cache || config_.power_loss_protection) {
    // PLP: the paper notes the FLUSH is effectively free on Optane drives.
    return;
  }
  // Backend bandwidth for the cached bytes was already charged at insert
  // time (the write_pipe reservation); the flush pays the barrier cost.
  Simulator::Sleep(config_.flush_base_ns);
  media_.Flush();
}

void SsdModel::PowerCut(const std::set<uint64_t>* survivors) {
  if (config_.power_loss_protection) {
    media_.Flush();
    return;
  }
  if (survivors == nullptr) {
    media_.PowerCutLoseAll();
  } else {
    media_.PowerCut(*survivors);
  }
}

void SsdModel::ResetStats() {
  reads_served_ = 0;
  writes_served_ = 0;
  flushes_served_ = 0;
  read_pipe_.ResetStats();
  write_pipe_.ResetStats();
}

}  // namespace ccnvme

// On-disk layout and superblock.
//
//   block 0              superblock
//   block 1              inode bitmap (1 block = 32768 inodes)
//   blocks 2..           block bitmap (covers the data area)
//   then                 inode table (32768 inodes * 256 B = 2048 blocks)
//   then                 journal area(s) (contiguous, split evenly)
//   then                 data area
//
// The layout is a pure function of (total_blocks, journal config), so the
// superblock only stores those inputs plus integrity fields.
#ifndef SRC_EXTFS_LAYOUT_H_
#define SRC_EXTFS_LAYOUT_H_

#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/vfs/types.h"

namespace ccnvme {

inline constexpr uint32_t kFsMagic = 0xCC4E564D;  // "ccNVM"
inline constexpr uint32_t kMaxInodes = 32768;
inline constexpr uint64_t kInodeTableBlocks = 2048;
// Block group size used to pick the radix tree for a metadata block (§5.2).
inline constexpr uint64_t kBlocksPerGroup = 8192;

struct FsLayout {
  uint64_t total_blocks = 0;
  uint32_t journal_areas = 1;
  uint64_t journal_blocks = 0;  // total across all areas

  BlockNo inode_bitmap() const { return 1; }
  BlockNo block_bitmap_start() const { return 2; }
  uint64_t block_bitmap_blocks() const {
    // One bit per data block; sized for the whole device (over-provisioned
    // but simple).
    return (total_blocks + kFsBlockSize * 8 - 1) / (kFsBlockSize * 8);
  }
  BlockNo inode_table_start() const { return block_bitmap_start() + block_bitmap_blocks(); }
  BlockNo journal_start() const { return inode_table_start() + kInodeTableBlocks; }
  uint64_t blocks_per_area() const { return journal_blocks / journal_areas; }
  BlockNo area_start(uint32_t area) const { return journal_start() + area * blocks_per_area(); }
  BlockNo data_start() const { return journal_start() + journal_blocks; }
  uint64_t data_blocks() const { return total_blocks - data_start(); }

  BlockNo InodeTableBlock(InodeNum ino) const {
    return inode_table_start() + ino / kInodesPerBlockConst();
  }
  size_t InodeOffsetInBlock(InodeNum ino) const {
    return (ino % kInodesPerBlockConst()) * 256;
  }
  static constexpr uint64_t kInodesPerBlockConst() { return kFsBlockSize / 256; }
};

struct Superblock {
  uint32_t magic = kFsMagic;
  uint64_t total_blocks = 0;
  uint32_t journal_areas = 1;
  uint64_t journal_blocks = 0;
  // Set while mounted; a crash leaves it set, triggering journal recovery.
  uint32_t dirty_mount = 0;

  void Serialize(std::span<uint8_t> out) const;
  static Result<Superblock> Parse(std::span<const uint8_t> in);

  FsLayout ToLayout() const {
    FsLayout l;
    l.total_blocks = total_blocks;
    l.journal_areas = journal_areas;
    l.journal_blocks = journal_blocks;
    return l;
  }
};

}  // namespace ccnvme

#endif  // SRC_EXTFS_LAYOUT_H_

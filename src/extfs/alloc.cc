#include "src/extfs/alloc.h"

namespace ccnvme {

Result<Allocator::Allocation> Allocator::AllocBit(BlockNo bitmap_start, uint64_t bitmap_blocks,
                                                  uint64_t num_bits, uint64_t hint) {
  const uint64_t bits_per_block = kFsBlockSize * 8;
  const uint64_t start_block = (hint / bits_per_block) % bitmap_blocks;
  // Start scanning at the hint's byte inside the block too: this spreads
  // different cores' allocations over different bitmap blocks / inode-table
  // blocks (ext4's block groups + flex_bg do the same), which is what lets
  // per-core journaling avoid shared-metadata contention.
  const uint64_t start_byte = (hint % bits_per_block) / 8;
  for (uint64_t i = 0; i < bitmap_blocks; ++i) {
    const uint64_t bi = (start_block + i) % bitmap_blocks;
    CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_->GetBlock(bitmap_start + bi));
    SimLockGuard guard(buf->lock);
    for (uint64_t b = 0; b < kFsBlockSize; ++b) {
      const uint64_t byte = (i == 0) ? (start_byte + b) % kFsBlockSize : b;
      if (buf->data[byte] == 0xFF) {
        continue;
      }
      for (int bit = 0; bit < 8; ++bit) {
        const uint64_t index = bi * bits_per_block + byte * 8 + static_cast<uint64_t>(bit);
        if (index >= num_bits) {
          break;
        }
        if ((buf->data[byte] & (1u << bit)) == 0) {
          buf->data[byte] |= static_cast<uint8_t>(1u << bit);
          buf->dirty = true;
          Allocation out;
          out.index = index;
          out.bitmap_block = bitmap_start + bi;
          return out;
        }
      }
    }
  }
  return OutOfSpace("bitmap full");
}

Status Allocator::FreeBit(BlockNo bitmap_start, uint64_t bit, BlockNo* bitmap_block) {
  const uint64_t bits_per_block = kFsBlockSize * 8;
  const BlockNo bb = bitmap_start + bit / bits_per_block;
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_->GetBlock(bb));
  SimLockGuard guard(buf->lock);
  const uint64_t within = bit % bits_per_block;
  uint8_t& byte = buf->data[within / 8];
  const uint8_t mask = static_cast<uint8_t>(1u << (within % 8));
  if ((byte & mask) == 0) {
    return Internal("double free of bit " + std::to_string(bit));
  }
  byte &= static_cast<uint8_t>(~mask);
  buf->dirty = true;
  if (bitmap_block != nullptr) {
    *bitmap_block = bb;
  }
  return OkStatus();
}

Result<Allocator::Allocation> Allocator::AllocInode(uint64_t hint) {
  auto res = AllocBit(layout_.inode_bitmap(), 1, kMaxInodes, hint);
  if (res.ok()) {
    inodes_in_use_++;
  }
  return res;
}

Status Allocator::FreeInode(InodeNum ino, BlockNo* bitmap_block) {
  CCNVME_RETURN_IF_ERROR(FreeBit(layout_.inode_bitmap(), ino, bitmap_block));
  inodes_in_use_--;
  return OkStatus();
}

Result<Allocator::Allocation> Allocator::AllocBlock(uint64_t hint) {
  auto res = AllocBit(layout_.block_bitmap_start(), layout_.block_bitmap_blocks(),
                      layout_.data_blocks(), hint);
  if (!res.ok()) {
    return res;
  }
  blocks_in_use_++;
  // Bit index is relative to the data area.
  res.value().index += layout_.data_start();
  return res;
}

Status Allocator::FreeBlock(BlockNo block, BlockNo* bitmap_block) {
  CCNVME_CHECK_GE(block, layout_.data_start());
  CCNVME_RETURN_IF_ERROR(FreeBit(layout_.block_bitmap_start(), block - layout_.data_start(),
                                 bitmap_block));
  blocks_in_use_--;
  return OkStatus();
}

namespace {

// Popcount over a bitmap range.
Result<uint64_t> CountBits(BufferCache* cache, BlockNo start, uint64_t blocks,
                           uint64_t num_bits) {
  uint64_t used = 0;
  uint64_t bit_base = 0;
  for (uint64_t i = 0; i < blocks; ++i) {
    CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache->GetBlock(start + i));
    for (uint64_t byte = 0; byte < kFsBlockSize && bit_base + byte * 8 < num_bits; ++byte) {
      used += static_cast<uint64_t>(__builtin_popcount(buf->data[byte]));
    }
    bit_base += kFsBlockSize * 8;
  }
  return used;
}

}  // namespace

Result<uint64_t> Allocator::CountUsedInodes() {
  CCNVME_ASSIGN_OR_RETURN(uint64_t used, CountBits(cache_, layout_.inode_bitmap(), 1,
                                                   kMaxInodes));
  // Inode 0 is reserved, not a real file.
  return used > 0 ? used - 1 : 0;
}

Result<uint64_t> Allocator::CountUsedBlocks() {
  return CountBits(cache_, layout_.block_bitmap_start(), layout_.block_bitmap_blocks(),
                   layout_.data_blocks());
}

}  // namespace ccnvme

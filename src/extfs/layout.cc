#include "src/extfs/layout.h"

#include "src/vfs/inode.h"

namespace ccnvme {

void Superblock::Serialize(std::span<uint8_t> out) const {
  std::memset(out.data(), 0, kFsBlockSize);
  PutU32(out, 0, magic);
  PutU64(out, 8, total_blocks);
  PutU32(out, 16, journal_areas);
  PutU64(out, 24, journal_blocks);
  PutU32(out, 32, dirty_mount);
  const uint64_t csum = Fnv1a(out.subspan(0, 64));
  PutU64(out, 64, csum);
}

Result<Superblock> Superblock::Parse(std::span<const uint8_t> in) {
  if (GetU32(in, 0) != kFsMagic) {
    return Corruption("bad superblock magic");
  }
  const uint64_t want = GetU64(in, 64);
  if (Fnv1a(in.subspan(0, 64)) != want) {
    return Corruption("superblock checksum mismatch");
  }
  Superblock sb;
  sb.magic = GetU32(in, 0);
  sb.total_blocks = GetU64(in, 8);
  sb.journal_areas = GetU32(in, 16);
  sb.journal_blocks = GetU64(in, 24);
  sb.dirty_mount = GetU32(in, 32);
  return sb;
}

}  // namespace ccnvme

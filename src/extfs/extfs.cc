#include "src/extfs/extfs.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/metrics/metrics.h"
#include "src/trace/tracer.h"
#include "src/jbd2/jbd2.h"
#include "src/mqfs/mq_journal.h"
#include "src/nvm/nvlog.h"

namespace ccnvme {

namespace {

constexpr size_t kDirEntrySize = 64;
constexpr size_t kDirEntriesPerBlock = kFsBlockSize / kDirEntrySize;
constexpr size_t kMaxNameLen = 57;

struct RawDirEntry {
  InodeNum ino = kInvalidInode;
  FileType type = FileType::kNone;
  std::string name;

  void Serialize(std::span<uint8_t> out) const {
    std::memset(out.data(), 0, kDirEntrySize);
    PutU32(out, 0, ino);
    out[4] = static_cast<uint8_t>(std::min(name.size(), kMaxNameLen));
    out[5] = static_cast<uint8_t>(type);
    PutString(out, 6, kMaxNameLen, name);
  }
  static RawDirEntry Parse(std::span<const uint8_t> in) {
    RawDirEntry e;
    e.ino = GetU32(in, 0);
    e.type = static_cast<FileType>(in[5]);
    const size_t len = std::min<size_t>(in[4], kMaxNameLen);
    e.name = std::string(reinterpret_cast<const char*>(in.data()) + 6, len);
    return e;
  }
};

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) {
        parts.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) {
    parts.push_back(cur);
  }
  return parts;
}

}  // namespace

ExtFs::ExtFs(Simulator* sim, BlockLayer* blk, const HostCosts& costs,
             const ExtFsOptions& options)
    : sim_(sim),
      blk_(blk),
      costs_(costs),
      options_(options),
      cache_(sim, blk),
      inode_cache_mu_(sim) {}

ExtFs::~ExtFs() = default;

void ExtFs::LockForUpdate(const BlockBufPtr& buf) {
  Simulator::Sleep(costs_.fs_page_lock_ns);
  buf->lock.Lock();
  while (buf->writeback) {
    buf->wb_cv.Wait(buf->lock);
  }
}

// ---------------------------------------------------------------------------
// mkfs / mount / unmount

Status ExtFs::Mkfs(Simulator* sim, BlockLayer* blk, uint64_t total_blocks,
                   const ExtFsOptions& options) {
  (void)sim;
  FsLayout layout;
  layout.total_blocks = total_blocks;
  layout.journal_areas = options.journal_areas;
  layout.journal_blocks = options.journal_blocks;
  CCNVME_CHECK_GT(layout.data_blocks(), 0u) << "device too small for this layout";
  CCNVME_CHECK_GE(layout.blocks_per_area(), 64u) << "journal areas too small";

  Buffer zero(kFsBlockSize, 0);

  // Inode bitmap: inodes 0 (reserved) and 1 (root) in use.
  Buffer ibm = zero;
  ibm[0] = 0x3;
  CCNVME_RETURN_IF_ERROR(blk->WriteSync(layout.inode_bitmap(), ibm));

  // Block bitmap: all free.
  for (uint64_t i = 0; i < layout.block_bitmap_blocks(); ++i) {
    CCNVME_RETURN_IF_ERROR(blk->WriteSync(layout.block_bitmap_start() + i, zero));
  }

  // Root inode.
  Buffer itable = zero;
  DiskInode root;
  root.type = FileType::kDirectory;
  root.nlink = 2;
  root.size = 0;
  root.Serialize(std::span<uint8_t>(itable).subspan(layout.InodeOffsetInBlock(kRootInode),
                                                    kInodeSize));
  CCNVME_RETURN_IF_ERROR(blk->WriteSync(layout.InodeTableBlock(kRootInode), itable));

  // Journal area superblocks.
  for (uint32_t a = 0; a < layout.journal_areas; ++a) {
    AreaSuperblock asb;
    asb.start_offset = 1;
    asb.cleared_txid = 0;
    Buffer blkbuf(kFsBlockSize, 0);
    asb.Serialize(blkbuf);
    CCNVME_RETURN_IF_ERROR(blk->WriteSync(layout.area_start(a), blkbuf));
  }

  // Superblock last, with a flush so mkfs is durable.
  Superblock sb;
  sb.total_blocks = total_blocks;
  sb.journal_areas = options.journal_areas;
  sb.journal_blocks = options.journal_blocks;
  sb.dirty_mount = 0;
  Buffer sbbuf(kFsBlockSize, 0);
  sb.Serialize(sbbuf);
  CCNVME_RETURN_IF_ERROR(blk->WriteSync(0, sbbuf, kBioPreflush | kBioFua));
  return OkStatus();
}

Status ExtFs::Mount() {
  CCNVME_CHECK(!mounted_);
  Buffer sbbuf;
  CCNVME_RETURN_IF_ERROR(blk_->ReadSync(0, 1, &sbbuf));
  CCNVME_ASSIGN_OR_RETURN(Superblock sb, Superblock::Parse(sbbuf));
  layout_ = sb.ToLayout();
  alloc_ = std::make_unique<Allocator>(&cache_, layout_);

  switch (options_.journal) {
    case JournalKind::kNone:
      journal_ = std::make_unique<NullJournal>(sim_, blk_, &cache_, costs_);
      break;
    case JournalKind::kClassic:
    case JournalKind::kHorae:
    case JournalKind::kCcNvmeJbd2: {
      Jbd2Options jopts;
      jopts.horae = options_.journal == JournalKind::kHorae;
      jopts.over_ccnvme = options_.journal == JournalKind::kCcNvmeJbd2;
      journal_ = std::make_unique<Jbd2Journal>(sim_, blk_, &cache_, layout_, costs_, this, jopts);
      break;
    }
    case JournalKind::kMultiQueue: {
      MqJournalOptions mopts;
      mopts.shadow_paging = options_.metadata_shadow_paging;
      mopts.selective_revocation = options_.selective_revocation;
      mopts.test_skip_psq_window_scan = options_.test_skip_psq_window_scan;
      journal_ = std::make_unique<MqJournal>(sim_, blk_, &cache_, layout_, costs_, this, mopts);
      break;
    }
    case JournalKind::kNvlog: {
      CCNVME_CHECK(blk_->nvm() != nullptr)
          << "JournalKind::kNvlog needs an NVM tier (StackConfig::nvm)";
      NvLogOptions nopts;
      nopts.drain_batch = options_.nvlog_drain_batch;
      nopts.drain_delay_ns = options_.nvlog_drain_delay_ns;
      nopts.drainers = options_.nvlog_drainers;
      nopts.test_skip_fence = options_.test_skip_nvlog_fence;
      journal_ = std::make_unique<NvLogJournal>(sim_, blk_, blk_->nvm(), costs_, this, nopts);
      break;
    }
  }

  if (sb.dirty_mount != 0) {
    CCNVME_RETURN_IF_ERROR(journal_->Recover());
    // Recovery wrote home blocks in place; drop cached copies so reads see
    // the recovered bytes.
    cache_.Clear();
    inode_cache_.clear();
  }

  sb.dirty_mount = 1;
  Buffer out(kFsBlockSize, 0);
  sb.Serialize(out);
  CCNVME_RETURN_IF_ERROR(blk_->WriteSync(0, out, kBioPreflush | kBioFua));
  mounted_ = true;
  return OkStatus();
}

Status ExtFs::Unmount() {
  CCNVME_CHECK(mounted_);
  CCNVME_RETURN_IF_ERROR(journal_->Shutdown());
  // Write back any remaining dirty cached blocks (metadata checkpointed by
  // the journal already; this covers never-synced data).
  for (InodeNum ino : [&] {
         std::vector<InodeNum> inos;
         for (auto& [num, inode] : inode_cache_) {
           (void)inode;
           inos.push_back(num);
         }
         return inos;
       }()) {
    auto inode = inode_cache_[ino];
    if (inode->dirty || !inode->dirty_data.empty() || !inode->dirty_metadata.empty()) {
      CCNVME_RETURN_IF_ERROR(Fsync(ino));
    }
  }
  CCNVME_RETURN_IF_ERROR(journal_->Shutdown());

  Buffer sbbuf;
  CCNVME_RETURN_IF_ERROR(blk_->ReadSync(0, 1, &sbbuf));
  CCNVME_ASSIGN_OR_RETURN(Superblock sb, Superblock::Parse(sbbuf));
  sb.dirty_mount = 0;
  Buffer out(kFsBlockSize, 0);
  sb.Serialize(out);
  CCNVME_RETURN_IF_ERROR(blk_->WriteSync(0, out, kBioPreflush | kBioFua));
  mounted_ = false;
  cache_.Clear();
  inode_cache_.clear();
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Inode handling

Result<InodePtr> ExtFs::GetInode(InodeNum ino) {
  {
    SimLockGuard guard(inode_cache_mu_);
    auto it = inode_cache_.find(ino);
    if (it != inode_cache_.end()) {
      return it->second;
    }
  }
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_.GetBlock(layout_.InodeTableBlock(ino)));
  auto inode = std::make_shared<Inode>(sim_, ino);
  inode->disk = DiskInode::Parse(
      std::span<const uint8_t>(buf->data).subspan(layout_.InodeOffsetInBlock(ino), kInodeSize));
  if (inode->disk.type == FileType::kNone) {
    return NotFound("inode " + std::to_string(ino) + " not allocated");
  }
  inode->size_at_last_sync = inode->disk.size;
  SimLockGuard guard(inode_cache_mu_);
  auto [it, inserted] = inode_cache_.emplace(ino, inode);
  return it->second;
}

Result<BlockBufPtr> ExtFs::FlushInodeToTable(const InodePtr& inode) {
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_.GetBlock(layout_.InodeTableBlock(inode->ino)));
  LockForUpdate(buf);
  inode->disk.Serialize(std::span<uint8_t>(buf->data)
                            .subspan(layout_.InodeOffsetInBlock(inode->ino), kInodeSize));
  buf->dirty = true;
  inode->dirty = false;
  buf->lock.Unlock();
  return buf;
}

// ---------------------------------------------------------------------------
// Path resolution

Result<InodePtr> ExtFs::ResolvePath(const std::string& path) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr cur, GetInode(kRootInode));
  for (const std::string& part : SplitPath(path)) {
    if (cur->disk.type != FileType::kDirectory) {
      return NotFound("not a directory on path: " + path);
    }
    CCNVME_ASSIGN_OR_RETURN(InodeNum next, DirLookup(cur, part));
    CCNVME_ASSIGN_OR_RETURN(cur, GetInode(next));
  }
  return cur;
}

Result<InodePtr> ExtFs::ResolveParent(const std::string& path, std::string* leaf) {
  std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    return InvalidArgument("path has no leaf: " + path);
  }
  *leaf = parts.back();
  CCNVME_ASSIGN_OR_RETURN(InodePtr cur, GetInode(kRootInode));
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    if (cur->disk.type != FileType::kDirectory) {
      return NotFound("not a directory on path: " + path);
    }
    CCNVME_ASSIGN_OR_RETURN(InodeNum next, DirLookup(cur, parts[i]));
    CCNVME_ASSIGN_OR_RETURN(cur, GetInode(next));
  }
  if (cur->disk.type != FileType::kDirectory) {
    return NotFound("parent is not a directory: " + path);
  }
  return cur;
}

// ---------------------------------------------------------------------------
// Directory blocks

Result<InodeNum> ExtFs::DirLookup(const InodePtr& dir, const std::string& name) {
  const uint64_t nblocks = (dir->disk.size + kFsBlockSize - 1) / kFsBlockSize;
  for (uint64_t b = 0; b < nblocks; ++b) {
    CCNVME_ASSIGN_OR_RETURN(BlockNo lba, FileBlock(dir, b, /*allocate=*/false, nullptr));
    CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_.GetBlock(lba));
    for (size_t e = 0; e < kDirEntriesPerBlock; ++e) {
      const RawDirEntry entry = RawDirEntry::Parse(
          std::span<const uint8_t>(buf->data).subspan(e * kDirEntrySize, kDirEntrySize));
      if (entry.ino != kInvalidInode && entry.name == name) {
        return entry.ino;
      }
    }
  }
  return NotFound("no entry '" + name + "'");
}

Status ExtFs::DirAdd(const InodePtr& dir, const std::string& name, InodeNum ino, FileType type,
                     std::set<BlockNo>* touched) {
  if (name.size() > kMaxNameLen) {
    return InvalidArgument("name too long: " + name);
  }
  Simulator::Sleep(costs_.fs_dir_update_ns);
  RawDirEntry entry;
  entry.ino = ino;
  entry.type = type;
  entry.name = name;

  const uint64_t nblocks = (dir->disk.size + kFsBlockSize - 1) / kFsBlockSize;
  // First fit into an existing block with a free slot.
  for (uint64_t b = 0; b < nblocks; ++b) {
    CCNVME_ASSIGN_OR_RETURN(BlockNo lba, FileBlock(dir, b, false, touched));
    CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_.GetBlock(lba));
    LockForUpdate(buf);
    for (size_t e = 0; e < kDirEntriesPerBlock; ++e) {
      std::span<uint8_t> slot =
          std::span<uint8_t>(buf->data).subspan(e * kDirEntrySize, kDirEntrySize);
      if (GetU32(slot, 0) == kInvalidInode) {
        entry.Serialize(slot);
        buf->dirty = true;
        buf->lock.Unlock();
        touched->insert(lba);
        return OkStatus();
      }
    }
    buf->lock.Unlock();
  }
  // Grow the directory by one block.
  CCNVME_ASSIGN_OR_RETURN(BlockNo lba, FileBlock(dir, nblocks, /*allocate=*/true, touched));
  BlockBufPtr buf = cache_.GetBlockNoRead(lba);
  LockForUpdate(buf);
  std::memset(buf->data.data(), 0, kFsBlockSize);
  entry.Serialize(std::span<uint8_t>(buf->data).subspan(0, kDirEntrySize));
  buf->dirty = true;
  buf->lock.Unlock();
  dir->disk.size = (nblocks + 1) * kFsBlockSize;
  dir->dirty = true;
  touched->insert(lba);
  return OkStatus();
}

Status ExtFs::DirRemove(const InodePtr& dir, const std::string& name,
                        std::set<BlockNo>* touched) {
  Simulator::Sleep(costs_.fs_dir_update_ns);
  const uint64_t nblocks = (dir->disk.size + kFsBlockSize - 1) / kFsBlockSize;
  for (uint64_t b = 0; b < nblocks; ++b) {
    CCNVME_ASSIGN_OR_RETURN(BlockNo lba, FileBlock(dir, b, false, touched));
    CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_.GetBlock(lba));
    LockForUpdate(buf);
    for (size_t e = 0; e < kDirEntriesPerBlock; ++e) {
      std::span<uint8_t> slot =
          std::span<uint8_t>(buf->data).subspan(e * kDirEntrySize, kDirEntrySize);
      const RawDirEntry entry = RawDirEntry::Parse(slot);
      if (entry.ino != kInvalidInode && entry.name == name) {
        std::memset(slot.data(), 0, kDirEntrySize);
        buf->dirty = true;
        buf->lock.Unlock();
        touched->insert(lba);
        return OkStatus();
      }
    }
    buf->lock.Unlock();
  }
  return NotFound("no entry '" + name + "'");
}

Result<std::vector<DirEntry>> ExtFs::DirList(const InodePtr& dir) {
  std::vector<DirEntry> out;
  const uint64_t nblocks = (dir->disk.size + kFsBlockSize - 1) / kFsBlockSize;
  for (uint64_t b = 0; b < nblocks; ++b) {
    CCNVME_ASSIGN_OR_RETURN(BlockNo lba, FileBlock(dir, b, false, nullptr));
    CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_.GetBlock(lba));
    for (size_t e = 0; e < kDirEntriesPerBlock; ++e) {
      const RawDirEntry entry = RawDirEntry::Parse(
          std::span<const uint8_t>(buf->data).subspan(e * kDirEntrySize, kDirEntrySize));
      if (entry.ino != kInvalidInode) {
        out.push_back(DirEntry{entry.ino, entry.type, entry.name});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Block mapping

Result<BlockNo> ExtFs::FileBlock(const InodePtr& inode, uint64_t index, bool allocate,
                                 std::set<BlockNo>* touched) {
  if (index >= kMaxFileBlocks) {
    return OutOfRange("file too large (block index " + std::to_string(index) + ")");
  }
  if (index < kDirectBlocks) {
    uint32_t& slot = inode->disk.direct[index];
    if (slot == 0) {
      if (!allocate) {
        return NotFound("hole at block " + std::to_string(index));
      }
      CCNVME_ASSIGN_OR_RETURN(
          auto alloc, alloc_->AllocBlock(static_cast<uint64_t>(inode->ino) * kFsBlockSize * 8));
      slot = static_cast<uint32_t>(alloc.index);
      inode->dirty = true;
      if (touched != nullptr) {
        touched->insert(alloc.bitmap_block);
      }
    }
    return BlockNo{slot};
  }
  // Indirect blocks.
  const uint64_t rel = index - kDirectBlocks;
  const size_t which = rel / kPtrsPerIndirect;
  const size_t within = rel % kPtrsPerIndirect;
  uint32_t& ind = inode->disk.indirect[which];
  if (ind == 0) {
    if (!allocate) {
      return NotFound("hole (no indirect block)");
    }
    CCNVME_ASSIGN_OR_RETURN(
        auto alloc, alloc_->AllocBlock(static_cast<uint64_t>(inode->ino) * kFsBlockSize * 8));
    ind = static_cast<uint32_t>(alloc.index);
    inode->dirty = true;
    BlockBufPtr ibuf = cache_.GetBlockNoRead(ind);
    std::memset(ibuf->data.data(), 0, kFsBlockSize);
    ibuf->dirty = true;
    if (touched != nullptr) {
      touched->insert(alloc.bitmap_block);
      touched->insert(ind);
    }
  }
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ibuf, cache_.GetBlock(ind));
  uint32_t ptr = GetU32(ibuf->data, within * 4);
  if (ptr == 0) {
    if (!allocate) {
      return NotFound("hole at block " + std::to_string(index));
    }
    CCNVME_ASSIGN_OR_RETURN(
        auto alloc, alloc_->AllocBlock(static_cast<uint64_t>(inode->ino) * kFsBlockSize * 8));
    ptr = static_cast<uint32_t>(alloc.index);
    LockForUpdate(ibuf);
    PutU32(ibuf->data, within * 4, ptr);
    ibuf->dirty = true;
    ibuf->lock.Unlock();
    if (touched != nullptr) {
      touched->insert(alloc.bitmap_block);
      touched->insert(ind);
    }
  }
  return BlockNo{ptr};
}

Status ExtFs::FreeInodeBlocks(const InodePtr& inode, std::set<BlockNo>* touched) {
  const bool is_dir = inode->disk.type == FileType::kDirectory;
  auto free_one = [&](BlockNo lba) -> Status {
    // Journaled content may linger in the log for this block (§5.4): revoke
    // directory blocks always (their content is metadata) and data blocks
    // under data journaling.
    if (is_dir || options_.data_journaling) {
      journal_->RevokeBlock(lba);
    }
    BlockNo bitmap_block = 0;
    CCNVME_RETURN_IF_ERROR(alloc_->FreeBlock(lba, &bitmap_block));
    touched->insert(bitmap_block);
    cache_.Forget(lba);
    return OkStatus();
  };
  for (size_t i = 0; i < kDirectBlocks; ++i) {
    if (inode->disk.direct[i] != 0) {
      CCNVME_RETURN_IF_ERROR(free_one(inode->disk.direct[i]));
      inode->disk.direct[i] = 0;
    }
  }
  for (uint32_t ind : inode->disk.indirect) {
    if (ind == 0) {
      continue;
    }
    CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ibuf, cache_.GetBlock(ind));
    for (size_t i = 0; i < kPtrsPerIndirect; ++i) {
      const uint32_t ptr = GetU32(ibuf->data, i * 4);
      if (ptr != 0) {
        CCNVME_RETURN_IF_ERROR(free_one(ptr));
      }
    }
    // The indirect block itself was journaled metadata.
    journal_->RevokeBlock(ind);
    BlockNo bitmap_block = 0;
    CCNVME_RETURN_IF_ERROR(alloc_->FreeBlock(ind, &bitmap_block));
    touched->insert(bitmap_block);
    cache_.Forget(ind);
  }
  inode->disk.indirect[0] = 0;
  inode->disk.indirect[1] = 0;
  inode->dirty = true;
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Namespace operations

Result<InodeNum> ExtFs::Create(const std::string& path) {
  std::string leaf;
  CCNVME_ASSIGN_OR_RETURN(InodePtr parent, ResolveParent(path, &leaf));
  SimLockGuard guard(parent->lock);
  if (DirLookup(parent, leaf).ok()) {
    return AlreadyExists(path);
  }
  CCNVME_ASSIGN_OR_RETURN(auto alloc, alloc_->AllocInode(0));
  const InodeNum ino = static_cast<InodeNum>(alloc.index);

  auto inode = std::make_shared<Inode>(sim_, ino);
  inode->disk.type = FileType::kRegular;
  inode->disk.nlink = 1;
  inode->disk.mtime_ns = sim_->now();
  inode->dirty = true;
  {
    SimLockGuard cache_guard(inode_cache_mu_);
    inode_cache_[ino] = inode;
  }

  std::set<BlockNo> touched;
  touched.insert(alloc.bitmap_block);
  CCNVME_RETURN_IF_ERROR(DirAdd(parent, leaf, ino, FileType::kRegular, &touched));
  parent->dirty = true;
  // The new file's fsync must persist the directory entry and the parent's
  // inode (pM in Figure 14), so the touched blocks belong to the child.
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ptable, FlushInodeToTable(parent));
  touched.insert(ptable->block_no);
  // The new inode's table slot must persist with the directory entry, or a
  // crash after fsync(parent) leaves a dangling entry.
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ctable, FlushInodeToTable(inode));
  touched.insert(ctable->block_no);
  inode->dirty_metadata.insert(touched.begin(), touched.end());
  parent->dirty_metadata.insert(touched.begin(), touched.end());
  return ino;
}

Status ExtFs::Mkdir(const std::string& path) {
  std::string leaf;
  CCNVME_ASSIGN_OR_RETURN(InodePtr parent, ResolveParent(path, &leaf));
  SimLockGuard guard(parent->lock);
  if (DirLookup(parent, leaf).ok()) {
    return AlreadyExists(path);
  }
  CCNVME_ASSIGN_OR_RETURN(auto alloc, alloc_->AllocInode(0));
  const InodeNum ino = static_cast<InodeNum>(alloc.index);
  auto inode = std::make_shared<Inode>(sim_, ino);
  inode->disk.type = FileType::kDirectory;
  inode->disk.nlink = 2;
  inode->disk.mtime_ns = sim_->now();
  inode->dirty = true;
  {
    SimLockGuard cache_guard(inode_cache_mu_);
    inode_cache_[ino] = inode;
  }
  std::set<BlockNo> touched;
  touched.insert(alloc.bitmap_block);
  CCNVME_RETURN_IF_ERROR(DirAdd(parent, leaf, ino, FileType::kDirectory, &touched));
  parent->disk.nlink++;
  parent->dirty = true;
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ptable, FlushInodeToTable(parent));
  touched.insert(ptable->block_no);
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ctable, FlushInodeToTable(inode));
  touched.insert(ctable->block_no);
  inode->dirty_metadata.insert(touched.begin(), touched.end());
  parent->dirty_metadata.insert(touched.begin(), touched.end());
  return OkStatus();
}

Result<InodeNum> ExtFs::Lookup(const std::string& path) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, ResolvePath(path));
  return inode->ino;
}

Status ExtFs::DropLink(const InodePtr& parent, const std::string& name, bool expect_dir,
                       std::set<BlockNo>* touched) {
  CCNVME_ASSIGN_OR_RETURN(InodeNum ino, DirLookup(parent, name));
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, GetInode(ino));
  const bool is_dir = inode->disk.type == FileType::kDirectory;
  if (expect_dir != is_dir) {
    return InvalidArgument(expect_dir ? "not a directory" : "is a directory");
  }
  if (is_dir) {
    CCNVME_ASSIGN_OR_RETURN(auto entries, DirList(inode));
    if (!entries.empty()) {
      return InvalidArgument("directory not empty");
    }
  }
  CCNVME_RETURN_IF_ERROR(DirRemove(parent, name, touched));
  inode->disk.nlink -= is_dir ? 2 : 1;
  inode->dirty = true;
  if (inode->disk.nlink == 0 || (is_dir && inode->disk.nlink <= 1)) {
    CCNVME_RETURN_IF_ERROR(FreeInodeBlocks(inode, touched));
    inode->disk.type = FileType::kNone;
    inode->disk.size = 0;
    BlockNo ibm = 0;
    CCNVME_RETURN_IF_ERROR(alloc_->FreeInode(ino, &ibm));
    touched->insert(ibm);
    SimLockGuard cache_guard(inode_cache_mu_);
    inode_cache_.erase(ino);
  }
  // The (possibly dead) inode's table block must be journaled to persist
  // the nlink change / deallocation.
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr table, FlushInodeToTable(inode));
  touched->insert(table->block_no);
  if (is_dir) {
    parent->disk.nlink--;
  }
  return OkStatus();
}

Status ExtFs::Unlink(const std::string& path) {
  std::string leaf;
  CCNVME_ASSIGN_OR_RETURN(InodePtr parent, ResolveParent(path, &leaf));
  SimLockGuard guard(parent->lock);
  std::set<BlockNo> touched;
  CCNVME_RETURN_IF_ERROR(DropLink(parent, leaf, /*expect_dir=*/false, &touched));
  parent->dirty = true;
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ptable, FlushInodeToTable(parent));
  touched.insert(ptable->block_no);
  parent->dirty_metadata.insert(touched.begin(), touched.end());
  return OkStatus();
}

Status ExtFs::Rmdir(const std::string& path) {
  std::string leaf;
  CCNVME_ASSIGN_OR_RETURN(InodePtr parent, ResolveParent(path, &leaf));
  SimLockGuard guard(parent->lock);
  std::set<BlockNo> touched;
  CCNVME_RETURN_IF_ERROR(DropLink(parent, leaf, /*expect_dir=*/true, &touched));
  parent->dirty = true;
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ptable, FlushInodeToTable(parent));
  touched.insert(ptable->block_no);
  parent->dirty_metadata.insert(touched.begin(), touched.end());
  return OkStatus();
}

Status ExtFs::Rename(const std::string& from, const std::string& to) {
  std::string from_leaf;
  std::string to_leaf;
  CCNVME_ASSIGN_OR_RETURN(InodePtr from_parent, ResolveParent(from, &from_leaf));
  CCNVME_ASSIGN_OR_RETURN(InodePtr to_parent, ResolveParent(to, &to_leaf));

  // Lock ordering by inode number prevents rename/rename deadlocks.
  InodePtr first = from_parent;
  InodePtr second = to_parent;
  if (first->ino > second->ino) {
    std::swap(first, second);
  }
  SimLockGuard guard1(first->lock);
  std::optional<SimLockGuard> guard2;
  if (first != second) {
    guard2.emplace(second->lock);
  }

  CCNVME_ASSIGN_OR_RETURN(InodeNum ino, DirLookup(from_parent, from_leaf));
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, GetInode(ino));

  std::set<BlockNo> touched;
  // POSIX rename: silently replace an existing target.
  if (DirLookup(to_parent, to_leaf).ok()) {
    CCNVME_RETURN_IF_ERROR(DropLink(to_parent, to_leaf,
                                    inode->disk.type == FileType::kDirectory, &touched));
  }
  CCNVME_RETURN_IF_ERROR(DirRemove(from_parent, from_leaf, &touched));
  CCNVME_RETURN_IF_ERROR(DirAdd(to_parent, to_leaf, ino, inode->disk.type, &touched));
  if (inode->disk.type == FileType::kDirectory && from_parent != to_parent) {
    from_parent->disk.nlink--;
    to_parent->disk.nlink++;
  }
  from_parent->dirty = true;
  to_parent->dirty = true;
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ftable, FlushInodeToTable(from_parent));
  touched.insert(ftable->block_no);
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ttable, FlushInodeToTable(to_parent));
  touched.insert(ttable->block_no);
  from_parent->dirty_metadata.insert(touched.begin(), touched.end());
  to_parent->dirty_metadata.insert(touched.begin(), touched.end());
  inode->dirty_metadata.insert(touched.begin(), touched.end());
  return OkStatus();
}

Status ExtFs::Link(const std::string& existing, const std::string& link_path) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, ResolvePath(existing));
  if (inode->disk.type == FileType::kDirectory) {
    return InvalidArgument("cannot hard-link a directory");
  }
  std::string leaf;
  CCNVME_ASSIGN_OR_RETURN(InodePtr parent, ResolveParent(link_path, &leaf));
  SimLockGuard guard(parent->lock);
  if (DirLookup(parent, leaf).ok()) {
    return AlreadyExists(link_path);
  }
  std::set<BlockNo> touched;
  CCNVME_RETURN_IF_ERROR(DirAdd(parent, leaf, inode->ino, inode->disk.type, &touched));
  inode->disk.nlink++;
  inode->dirty = true;
  parent->dirty = true;
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ltable, FlushInodeToTable(inode));
  touched.insert(ltable->block_no);
  CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ptable, FlushInodeToTable(parent));
  touched.insert(ptable->block_no);
  inode->dirty_metadata.insert(touched.begin(), touched.end());
  parent->dirty_metadata.insert(touched.begin(), touched.end());
  return OkStatus();
}

Result<std::vector<DirEntry>> ExtFs::ListDir(const std::string& path) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr dir, ResolvePath(path));
  if (dir->disk.type != FileType::kDirectory) {
    return InvalidArgument("not a directory: " + path);
  }
  SimLockGuard guard(dir->lock);
  return DirList(dir);
}

// ---------------------------------------------------------------------------
// File I/O

Status ExtFs::Write(InodeNum ino, uint64_t offset, std::span<const uint8_t> data) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, GetInode(ino));
  SimLockGuard guard(inode->lock);
  std::set<BlockNo> touched;
  size_t written = 0;
  while (written < data.size()) {
    const uint64_t pos = offset + written;
    const uint64_t index = pos / kFsBlockSize;
    const size_t within = pos % kFsBlockSize;
    const size_t chunk = std::min<size_t>(kFsBlockSize - within, data.size() - written);

    CCNVME_ASSIGN_OR_RETURN(BlockNo lba, FileBlock(inode, index, /*allocate=*/true, &touched));
    BlockBufPtr buf;
    const bool full_overwrite = within == 0 && chunk == kFsBlockSize;
    const bool past_eof = index * kFsBlockSize >= inode->disk.size;
    if (full_overwrite || past_eof) {
      buf = cache_.GetBlockNoRead(lba);
    } else {
      CCNVME_ASSIGN_OR_RETURN(buf, cache_.GetBlock(lba));
    }
    LockForUpdate(buf);
    Simulator::Sleep(costs_.fs_memcpy_4k_ns * chunk / kFsBlockSize);
    std::memcpy(buf->data.data() + within, data.data() + written, chunk);
    buf->dirty = true;
    buf->lock.Unlock();
    inode->dirty_data.insert(lba);
    written += chunk;
  }
  if (offset + data.size() > inode->disk.size) {
    inode->disk.size = offset + data.size();
  }
  inode->disk.mtime_ns = sim_->now();
  inode->dirty = true;
  inode->dirty_metadata.insert(touched.begin(), touched.end());
  return OkStatus();
}

Status ExtFs::Append(InodeNum ino, std::span<const uint8_t> data) {
  CCNVME_ASSIGN_OR_RETURN(uint64_t size, FileSize(ino));
  return Write(ino, size, data);
}

Status ExtFs::Read(InodeNum ino, uint64_t offset, std::span<uint8_t> out) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, GetInode(ino));
  SimLockGuard guard(inode->lock);
  if (offset + out.size() > inode->disk.size) {
    return OutOfRange("read past EOF");
  }
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t pos = offset + done;
    const uint64_t index = pos / kFsBlockSize;
    const size_t within = pos % kFsBlockSize;
    const size_t chunk = std::min<size_t>(kFsBlockSize - within, out.size() - done);
    auto lba = FileBlock(inode, index, /*allocate=*/false, nullptr);
    if (!lba.ok()) {
      std::memset(out.data() + done, 0, chunk);  // hole
    } else {
      CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_.GetBlock(*lba));
      std::memcpy(out.data() + done, buf->data.data() + within, chunk);
    }
    done += chunk;
  }
  return OkStatus();
}

Result<uint64_t> ExtFs::FileSize(InodeNum ino) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, GetInode(ino));
  return inode->disk.size;
}

Status ExtFs::Truncate(InodeNum ino, uint64_t new_size) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, GetInode(ino));
  SimLockGuard guard(inode->lock);
  if (inode->disk.type != FileType::kRegular) {
    return InvalidArgument("truncate on non-regular file");
  }
  std::set<BlockNo> touched;
  if (new_size < inode->disk.size) {
    const uint64_t keep_blocks = (new_size + kFsBlockSize - 1) / kFsBlockSize;
    const uint64_t old_blocks = (inode->disk.size + kFsBlockSize - 1) / kFsBlockSize;
    const bool dj = options_.data_journaling;
    for (uint64_t idx = keep_blocks; idx < old_blocks; ++idx) {
      auto lba = FileBlock(inode, idx, /*allocate=*/false, nullptr);
      if (!lba.ok()) {
        continue;  // hole
      }
      if (dj) {
        journal_->RevokeBlock(*lba);  // journaled data must not be replayed
      }
      inode->dirty_data.erase(*lba);
      BlockNo bitmap_block = 0;
      CCNVME_RETURN_IF_ERROR(alloc_->FreeBlock(*lba, &bitmap_block));
      touched.insert(bitmap_block);
      cache_.Forget(*lba);
      // Clear the mapping.
      if (idx < kDirectBlocks) {
        inode->disk.direct[idx] = 0;
      } else {
        const uint64_t rel = idx - kDirectBlocks;
        const uint32_t ind = inode->disk.indirect[rel / kPtrsPerIndirect];
        CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ibuf, cache_.GetBlock(ind));
        LockForUpdate(ibuf);
        PutU32(ibuf->data, (rel % kPtrsPerIndirect) * 4, 0);
        ibuf->dirty = true;
        ibuf->lock.Unlock();
        touched.insert(ind);
      }
    }
    // Zero the tail of the last kept block so stale bytes never resurface.
    if (new_size % kFsBlockSize != 0) {
      auto lba = FileBlock(inode, new_size / kFsBlockSize, /*allocate=*/false, nullptr);
      if (lba.ok()) {
        CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_.GetBlock(*lba));
        LockForUpdate(buf);
        std::memset(buf->data.data() + new_size % kFsBlockSize, 0,
                    kFsBlockSize - new_size % kFsBlockSize);
        buf->dirty = true;
        buf->lock.Unlock();
        inode->dirty_data.insert(*lba);
      }
    }
  }
  inode->disk.size = new_size;
  inode->disk.mtime_ns = sim_->now();
  inode->dirty = true;
  inode->dirty_metadata.insert(touched.begin(), touched.end());
  return OkStatus();
}

Result<ExtFs::StatInfo> ExtFs::Stat(InodeNum ino) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, GetInode(ino));
  StatInfo info;
  info.ino = ino;
  info.type = inode->disk.type;
  info.nlink = inode->disk.nlink;
  info.size = inode->disk.size;
  info.mtime_ns = inode->disk.mtime_ns;
  for (size_t i = 0; i < kDirectBlocks; ++i) {
    if (inode->disk.direct[i] != 0) {
      info.blocks++;
    }
  }
  for (uint32_t ind : inode->disk.indirect) {
    if (ind == 0) {
      continue;
    }
    info.blocks++;  // the indirect block itself
    CCNVME_ASSIGN_OR_RETURN(BlockBufPtr ibuf, cache_.GetBlock(ind));
    for (size_t i = 0; i < kPtrsPerIndirect; ++i) {
      if (GetU32(ibuf->data, i * 4) != 0) {
        info.blocks++;
      }
    }
  }
  return info;
}

Result<ExtFs::StatInfo> ExtFs::StatPath(const std::string& path) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, ResolvePath(path));
  return Stat(inode->ino);
}

// ---------------------------------------------------------------------------
// Sync primitives

Status ExtFs::SyncInternal(InodeNum ino, SyncMode mode) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, GetInode(ino));
  inode->lock.Lock();
  Simulator::Sleep(costs_.fs_tx_begin_ns);

  // Every sync is one attributed request flow: the id is allocated
  // unconditionally (tracing must not change behavior) and follows the
  // operation down to the SQE and back up through the CQE. When the caller
  // already opened the request window (Fsync's cross-core gate does, so the
  // wait.fsync_leader park lands inside the profiled request), reuse it
  // instead of nesting a second root span.
  std::optional<ScopedTraceContext> trace_ctx;
  std::optional<ScopedSpan> total_span;
  Tracer* tracer = sim_->tracer();
  if (CurrentTraceContext().req_id == 0) {
    trace_ctx.emplace(TraceContext{next_req_id_++, 0});
    total_span.emplace(tracer, TracePoint::kSyncTotal);
  }

  SyncOp op;
  op.ino = ino;
  std::set<BlockNo> seen;

  {
    // S-iD: search dirty data blocks and route them.
    ScopedSpan phase(tracer, TracePoint::kSyncSubmitData);
    if (!inode->dirty_data.empty()) {
      Simulator::Sleep(costs_.fs_dirty_search_alloc_ns);
      for (BlockNo lba : inode->dirty_data) {
        CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_.GetBlock(lba));
        if (options_.data_journaling || journal_->ForceJournalData(lba)) {
          if (seen.insert(lba).second) {
            op.metadata.push_back(buf);
          }
        } else {
          op.data.push_back(buf);
        }
      }
      inode->dirty_data.clear();
    }
  }

  {
    // S-iM: the inode itself (skipped by fdataatomic when the size is
    // unchanged, §5.1).
    ScopedSpan phase(tracer, TracePoint::kSyncSubmitInode);
    const bool skip_inode = mode == SyncMode::kFdataatomic &&
                            inode->disk.size == inode->size_at_last_sync && !inode->dirty;
    if (!skip_inode) {
      Simulator::Sleep(costs_.fs_inode_update_ns);
      CCNVME_ASSIGN_OR_RETURN(BlockBufPtr table, FlushInodeToTable(inode));
      if (seen.insert(table->block_no).second) {
        op.metadata.push_back(table);
      }
    }
  }

  {
    // S-pM and friends: metadata blocks touched by this inode's operations.
    ScopedSpan phase(tracer, TracePoint::kSyncSubmitParent);
    for (BlockNo lba : inode->dirty_metadata) {
      if (!seen.insert(lba).second) {
        continue;
      }
      CCNVME_ASSIGN_OR_RETURN(BlockBufPtr buf, cache_.GetBlock(lba));
      op.metadata.push_back(buf);
    }
    inode->dirty_metadata.clear();
    inode->size_at_last_sync = inode->disk.size;
    inode->lock.Unlock();
  }

  if (op.data.empty() && op.metadata.empty()) {
    return OkStatus();  // nothing to persist
  }
  if (mode != SyncMode::kFsync && !journal_->SupportsAtomic()) {
    mode = SyncMode::kFsync;  // Ext4/HoraeFS: fatomic degenerates to fsync
  }
  return journal_->Sync(op, mode);
}

Status ExtFs::Fsync(InodeNum ino) {
  if (!options_.cross_core_fsync_aggregation) {
    return SyncInternal(ino, SyncMode::kFsync);
  }
  // Cross-core group commit, per inode: register an epoch, then either wait
  // for a leader whose commit covers it or become the leader and commit for
  // everyone registered so far. Correctness lean: a leader computes its
  // coverage high-water mark BEFORE SyncInternal captures the dirty sets, so
  // every registered caller's completed writes are inside the commit.
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, GetInode(ino));
  // The request window opens BEFORE the gate: a follower's entire latency is
  // the park behind the committing leader, and that wait.fsync_leader edge
  // must land inside its own profiled request (the commit-convoy signature).
  // SyncInternal sees the live request id and reuses this window.
  ScopedTraceContext trace_ctx({next_req_id_++, 0});
  ScopedSpan total_span(sim_->tracer(), TracePoint::kSyncTotal);
  Inode& node = *inode;
  node.sync_gate_mu.Lock();
  const uint64_t my_epoch = ++node.fsync_requested;
  const uint64_t gate_entry_ns = sim_->now();
  while (node.fsync_covered < my_epoch && node.fsync_leader_active) {
    if (options_.test_skip_cross_core_order) {
      // INJECTED BUG: assume the in-flight leader will cover us. It captured
      // its batch before we registered, so our data may miss the commit.
      const uint64_t covered = node.fsync_covered;
      node.sync_gate_mu.Unlock();
      if (Metrics* m = sim_->metrics()) {
        m->monitors().OnFsyncReturn(ino, my_epoch, covered);
      }
      return OkStatus();
    }
    node.sync_gate_cv.Wait(node.sync_gate_mu);
  }
  if (node.fsync_covered >= my_epoch) {
    // A leader that won the race after we registered already persisted our
    // epoch: piggy-backed group commit, no I/O of our own.
    const uint64_t covered = node.fsync_covered;
    node.sync_gate_mu.Unlock();
    if (Tracer* t = sim_->tracer()) {
      if (sim_->now() > gate_entry_ns) {
        t->WaitEdgeEvent(WaitEdge::kFsyncLeader, gate_entry_ns, sim_->now(), ino);
      }
    }
    if (Metrics* m = sim_->metrics()) {
      m->monitors().OnFsyncReturn(ino, my_epoch, covered);
    }
    return OkStatus();
  }
  // Leader: cover every epoch registered up to now.
  node.fsync_leader_active = true;
  const uint64_t batch_high = node.fsync_requested;
  node.sync_gate_mu.Unlock();
  if (Tracer* t = sim_->tracer()) {
    if (sim_->now() > gate_entry_ns) {
      t->WaitEdgeEvent(WaitEdge::kFsyncLeader, gate_entry_ns, sim_->now(), ino);
    }
  }
  const Status st = SyncInternal(ino, SyncMode::kFsync);
  node.sync_gate_mu.Lock();
  node.fsync_leader_active = false;
  if (st.ok()) {
    node.fsync_covered = std::max(node.fsync_covered, batch_high);
    node.fsync_leader_commits++;
  }
  const uint64_t covered = node.fsync_covered;
  node.sync_gate_mu.Unlock();
  node.sync_gate_cv.NotifyAll();
  if (st.ok()) {
    if (Metrics* m = sim_->metrics()) {
      m->monitors().OnFsyncReturn(ino, my_epoch, covered);
    }
  }
  return st;
}
Status ExtFs::Fatomic(InodeNum ino) { return SyncInternal(ino, SyncMode::kFatomic); }
Status ExtFs::Fdataatomic(InodeNum ino) { return SyncInternal(ino, SyncMode::kFdataatomic); }

Status ExtFs::FsyncPath(const std::string& path) {
  CCNVME_ASSIGN_OR_RETURN(InodePtr inode, ResolvePath(path));
  return Fsync(inode->ino);
}

// ---------------------------------------------------------------------------
// Consistency check

Status ExtFs::CheckConsistency() {
  // Walk the tree from the root; every reachable inode must parse, sizes
  // must map to allocated blocks, directory entries must reference live
  // inodes of the right type.
  std::vector<InodeNum> stack = {kRootInode};
  std::set<InodeNum> visited;
  while (!stack.empty()) {
    const InodeNum ino = stack.back();
    stack.pop_back();
    if (!visited.insert(ino).second) {
      continue;
    }
    CCNVME_ASSIGN_OR_RETURN(InodePtr inode, GetInode(ino));
    if (inode->disk.type == FileType::kNone) {
      return Corruption("reachable inode " + std::to_string(ino) + " is unallocated");
    }
    const uint64_t nblocks = (inode->disk.size + kFsBlockSize - 1) / kFsBlockSize;
    if (nblocks > kMaxFileBlocks) {
      return Corruption("inode " + std::to_string(ino) + " has absurd size");
    }
    if (inode->disk.type == FileType::kDirectory) {
      CCNVME_ASSIGN_OR_RETURN(auto entries, DirList(inode));
      for (const DirEntry& e : entries) {
        if (e.ino == kInvalidInode || e.ino >= kMaxInodes) {
          return Corruption("bad dir entry ino in dir " + std::to_string(ino));
        }
        auto child = GetInode(e.ino);
        if (!child.ok()) {
          return Corruption("dangling dir entry '" + e.name + "' -> " + std::to_string(e.ino));
        }
        if ((*child)->disk.type != e.type) {
          return Corruption("dir entry type mismatch for '" + e.name + "'");
        }
        stack.push_back(e.ino);
      }
    }
  }
  return OkStatus();
}

}  // namespace ccnvme

// Bitmap allocators for inodes and data blocks.
//
// Both operate through the buffer cache so allocation state is journaled
// like any other metadata: the allocator returns the bitmap block it dirtied
// and the FS adds it to the inode's sync set.
#ifndef SRC_EXTFS_ALLOC_H_
#define SRC_EXTFS_ALLOC_H_

#include "src/common/status.h"
#include "src/extfs/layout.h"
#include "src/vfs/buffer_cache.h"
#include "src/vfs/inode.h"

namespace ccnvme {

class Allocator {
 public:
  Allocator(BufferCache* cache, const FsLayout& layout) : cache_(cache), layout_(layout) {}

  struct Allocation {
    uint64_t index = 0;       // inode number or data block LBA
    BlockNo bitmap_block = 0; // the dirtied bitmap block (for journaling)
  };

  // Allocates a free inode number. |hint| spreads allocations (e.g. by
  // core) to reduce bitmap-block contention.
  Result<Allocation> AllocInode(uint64_t hint = 0);
  Status FreeInode(InodeNum ino, BlockNo* bitmap_block);

  // Allocates a free data block (returns its absolute LBA).
  Result<Allocation> AllocBlock(uint64_t hint = 0);
  Status FreeBlock(BlockNo block, BlockNo* bitmap_block);

  uint64_t blocks_in_use() const { return blocks_in_use_; }
  uint64_t inodes_in_use() const { return inodes_in_use_; }

  // Authoritative counts from the on-media bitmaps (fsck uses these; the
  // counters above only track allocations made through this instance).
  Result<uint64_t> CountUsedInodes();
  Result<uint64_t> CountUsedBlocks();

 private:
  // Finds and sets a zero bit in the bitmap spanning
  // [bitmap_start, bitmap_start+bitmap_blocks); bit index is relative.
  Result<Allocation> AllocBit(BlockNo bitmap_start, uint64_t bitmap_blocks, uint64_t num_bits,
                              uint64_t hint);
  Status FreeBit(BlockNo bitmap_start, uint64_t bit, BlockNo* bitmap_block);

  BufferCache* cache_;
  FsLayout layout_;
  uint64_t blocks_in_use_ = 0;
  uint64_t inodes_in_use_ = 0;
};

}  // namespace ccnvme

#endif  // SRC_EXTFS_ALLOC_H_

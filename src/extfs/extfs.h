// ExtFs: the ext4-like file system all compared systems share (§7.1: "all
// the tested file systems are based on the same codebase of the Ext4").
//
// The journaling machinery is pluggable (vfs/journal.h):
//   kClassic    -> Ext4           (JBD2: descriptor + commit record, FLUSH/FUA
//                                  ordering points, single commit thread)
//   kHorae      -> HoraeFS        (ordering points removed, commit record and
//                                  commit thread retained)
//   kNone       -> Ext4-NJ        (no journal, in-place writes + flush)
//   kMultiQueue -> MQFS           (multi-queue journaling over ccNVMe with
//                                  metadata shadow paging and selective
//                                  revocation; adds fatomic/fdataatomic)
//   kNvlog      -> NVLog/extfs    (transparent NVM write-ahead log: fsync
//                                  appends to byte-addressable NVM and
//                                  returns at flush+fence; a background
//                                  drainer checkpoints to the block stack)
//
// All metadata (superblock, bitmaps, inode table, directories) is serialized
// to the simulated media, so a crash test can remount from raw bytes.
#ifndef SRC_EXTFS_EXTFS_H_
#define SRC_EXTFS_EXTFS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/driver/host_costs.h"
#include "src/extfs/alloc.h"
#include "src/extfs/layout.h"
#include "src/vfs/buffer_cache.h"
#include "src/vfs/inode.h"
#include "src/vfs/journal.h"

namespace ccnvme {

enum class JournalKind { kNone, kClassic, kHorae, kCcNvmeJbd2, kMultiQueue, kNvlog };

struct ExtFsOptions {
  JournalKind journal = JournalKind::kClassic;
  uint32_t journal_areas = 1;       // kMultiQueue: one per hardware queue
  uint64_t journal_blocks = 16384;  // 64 MB total, split across areas
  bool data_journaling = false;
  // MQFS knobs (§5.3, §5.4); ignored by the other journals.
  bool metadata_shadow_paging = true;
  bool selective_revocation = true;
  // TEST ONLY: recovery ignores the driver's P-SQ window and trusts every
  // scanned descriptor without validating its per-block content checksums.
  // This is the paper's recovery contract broken on purpose — the crash
  // explorer must catch it (replaying half-persisted transactions).
  bool test_skip_psq_window_scan = false;
  // Cross-core fsync aggregation: concurrent fsyncs of one inode elect a
  // leader whose single journal commit covers every caller registered at
  // election time (group commit across cores). Free when uncontended.
  bool cross_core_fsync_aggregation = true;
  // TEST ONLY: breaks the aggregation contract on purpose — a follower that
  // finds a leader in flight returns immediately, claiming durability the
  // leader's commit may not include. The fs.fsync_cross_core_order monitor
  // and the multi-core crash exploration must both catch it.
  bool test_skip_cross_core_order = false;
  // NVLog knobs (kNvlog only): drain batch size, the absorb window the
  // background drainer waits before checkpointing, and the size of the
  // drainer pool (extra drainers overlap checkpoint I/O, shrinking the
  // wait.nvlog_drain backpressure edge when the ring runs full).
  uint32_t nvlog_drain_batch = 8;
  uint64_t nvlog_drain_delay_ns = 30000;
  uint32_t nvlog_drainers = 1;
  // TEST ONLY: fsync returns without the NVM flush+fence persist barrier,
  // claiming durability the log does not have. The nvm.log_drain_order
  // monitor and the crash explorer must both catch it.
  bool test_skip_nvlog_fence = false;
};

struct DirEntry {
  InodeNum ino;
  FileType type;
  std::string name;
};

class ExtFs {
 public:
  ExtFs(Simulator* sim, BlockLayer* blk, const HostCosts& costs, const ExtFsOptions& options);
  ~ExtFs();

  // Formats the device. Called once per fresh media.
  static Status Mkfs(Simulator* sim, BlockLayer* blk, uint64_t total_blocks,
                     const ExtFsOptions& options);

  // Mounts: reads the superblock, builds the journal, runs crash recovery
  // if the previous mount did not shut down cleanly.
  Status Mount();
  // Graceful shutdown (§5.5): waits for in-flight transactions, checkpoints
  // the journal, clears the dirty flag.
  Status Unmount();

  // --- Namespace operations ----------------------------------------------
  Result<InodeNum> Create(const std::string& path);
  Status Mkdir(const std::string& path);
  Result<InodeNum> Lookup(const std::string& path);
  Status Unlink(const std::string& path);
  Status Rmdir(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);
  Status Link(const std::string& existing, const std::string& link_path);
  Result<std::vector<DirEntry>> ListDir(const std::string& path);

  // --- File I/O ------------------------------------------------------------
  Status Write(InodeNum ino, uint64_t offset, std::span<const uint8_t> data);
  Status Append(InodeNum ino, std::span<const uint8_t> data);
  Status Read(InodeNum ino, uint64_t offset, std::span<uint8_t> out);
  Result<uint64_t> FileSize(InodeNum ino);
  // Shrinks or grows the file. Shrinking frees blocks (with journal
  // revocation for reuse safety); growing leaves a hole.
  Status Truncate(InodeNum ino, uint64_t new_size);

  struct StatInfo {
    InodeNum ino = kInvalidInode;
    FileType type = FileType::kNone;
    uint32_t nlink = 0;
    uint64_t size = 0;
    uint64_t mtime_ns = 0;
    uint64_t blocks = 0;  // allocated 4 KB blocks
  };
  Result<StatInfo> Stat(InodeNum ino);
  Result<StatInfo> StatPath(const std::string& path);

  // --- Synchronization primitives (§5.1) -----------------------------------
  Status Fsync(InodeNum ino);
  // Atomicity without durability; falls back to fsync semantics when the
  // journal cannot decouple them (everything but MQFS).
  Status Fatomic(InodeNum ino);
  Status Fdataatomic(InodeNum ino);
  // Directory fsync by path (used by Varmail and the crash tests).
  Status FsyncPath(const std::string& path);

  Journal* journal() { return journal_.get(); }
  const FsLayout& layout() const { return layout_; }
  BufferCache* cache() { return &cache_; }
  Allocator* allocator() { return alloc_.get(); }
  BlockLayer* block_layer() { return blk_; }
  const HostCosts& costs() const { return costs_; }

  // Consistency check used by the crash tests: walks the directory tree and
  // verifies inodes, link counts and directory structure parse cleanly.
  Status CheckConsistency();

 private:
  Result<InodePtr> GetInode(InodeNum ino);
  // Serializes the in-memory inode into its inode-table block (page-locked)
  // and returns the table block for journaling.
  Result<BlockBufPtr> FlushInodeToTable(const InodePtr& inode);
  Result<InodePtr> ResolvePath(const std::string& path);
  Result<InodePtr> ResolveParent(const std::string& path, std::string* leaf);

  // Directory helpers; |touched| accumulates dirtied metadata blocks.
  Result<InodeNum> DirLookup(const InodePtr& dir, const std::string& name);
  Status DirAdd(const InodePtr& dir, const std::string& name, InodeNum ino, FileType type,
                std::set<BlockNo>* touched);
  Status DirRemove(const InodePtr& dir, const std::string& name, std::set<BlockNo>* touched);
  Result<std::vector<DirEntry>> DirList(const InodePtr& dir);

  // Maps file block |index| to an LBA, allocating on demand.
  Result<BlockNo> FileBlock(const InodePtr& inode, uint64_t index, bool allocate,
                            std::set<BlockNo>* touched);
  // Frees all blocks of an inode (unlink of last reference).
  Status FreeInodeBlocks(const InodePtr& inode, std::set<BlockNo>* touched);

  Status SyncInternal(InodeNum ino, SyncMode mode);
  // Common unlink helper for Unlink/Rmdir/Rename-overwrite.
  Status DropLink(const InodePtr& parent, const std::string& name, bool expect_dir,
                  std::set<BlockNo>* touched);

  // Blocks until |buf| is not under writeback, then locks its page lock.
  void LockForUpdate(const BlockBufPtr& buf);

  Simulator* sim_;
  BlockLayer* blk_;
  HostCosts costs_;
  ExtFsOptions options_;
  BufferCache cache_;
  FsLayout layout_;
  std::unique_ptr<Allocator> alloc_;
  std::unique_ptr<Journal> journal_;
  bool mounted_ = false;

  SimMutex inode_cache_mu_;
  std::unordered_map<InodeNum, InodePtr> inode_cache_;
  // Global transaction counter — MQFS's linearization point (§5.1). The
  // classic journal uses it for commit sequence numbers too.
  uint64_t next_tx_id_ = 1;
  // Trace request-flow ids, one per sync call (allocated whether or not a
  // tracer is attached so tracing never perturbs behavior).
  uint64_t next_req_id_ = 1;

 public:
  uint64_t AllocTxId() { return next_tx_id_++; }
};

}  // namespace ccnvme

#endif  // SRC_EXTFS_EXTFS_H_

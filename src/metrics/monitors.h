// Online protocol-invariant monitors.
//
// ccNVMe's crash-consistency guarantee rests on runtime invariants — the WC
// flush precedes the doorbell, doorbells advance by exactly the staged
// count, transactions complete in per-queue order, the commit record never
// precedes its member blocks, a volume rings its commit device only after
// every member sealed, recovery consults the full P-SQ window. The crash
// explorer checks these post-hoc; these monitors check them the moment they
// occur, in ANY run that has a Metrics object attached to the simulator.
//
// Contract (shared with the tracer, enforced by tests/metrics_test.cc):
// every hook only reads Simulator::now() and writes monitor-owned memory —
// no sleeps, no scheduling, no blocking — so a run with monitors attached
// is byte-identical in virtual time to one without. A violation increments
// the monitor's counter and records the offending virtual time; with
// set_abort_on_violation(true) it aborts the process instead (useful under
// CI to fail at the first broken invariant).
#ifndef SRC_METRICS_MONITORS_H_
#define SRC_METRICS_MONITORS_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/simulator.h"

namespace ccnvme {

enum class MonitorId : uint16_t {
  kPcieFenceOrdering = 0,      // read fence returned before posted writes drained
  kNvmeCqeSlotOrder,           // CQE posted out of CQ slot order
  kNvmeCqePhaseTag,            // CQE carries the wrong phase tag for its lap
  kCcnvmeDoorbellMonotonic,    // P-SQDB advance != number of staged SQEs
  kCcnvmeFlushBeforeDoorbell,  // doorbell rung with WC bytes still volatile
  kCcnvmePsqWindowBounds,      // [P-SQ-head, P-SQDB) outside queue bounds
  kCcnvmeTxIdMonotonic,        // committed tx ids not increasing per queue
  kCcnvmeInOrderCompletion,    // tx completed ahead of an earlier inflight tx
  kJournalCommitAfterBlocks,   // commit record issued before all member blocks
  kVolumeSealBeforeCommit,     // commit-device ring before every member sealed
  kRecoveryWindowScan,         // recovery ignored part of a non-empty window
  kFsyncCrossCoreOrder,        // fsync returned before its cross-core group
                               // commit covered the caller's registration
  kNvlogDrainOrder,            // checkpoint block issued before its covering
                               // NVM log entry was fenced durable
  kFtlMapDataAtomicity,        // KV Store committed its map entry while the
                               // data pages or the fenced shadow were not yet
                               // durable (map+data atomicity window broken)
  kNumMonitors,
};

inline constexpr size_t kNumMonitors = static_cast<size_t>(MonitorId::kNumMonitors);

constexpr const char* MonitorName(MonitorId id) {
  switch (id) {
    case MonitorId::kPcieFenceOrdering: return "pcie.fence_ordering";
    case MonitorId::kNvmeCqeSlotOrder: return "nvme.cqe_slot_order";
    case MonitorId::kNvmeCqePhaseTag: return "nvme.cqe_phase_tag";
    case MonitorId::kCcnvmeDoorbellMonotonic: return "ccnvme.doorbell_monotonic";
    case MonitorId::kCcnvmeFlushBeforeDoorbell: return "ccnvme.flush_before_doorbell";
    case MonitorId::kCcnvmePsqWindowBounds: return "ccnvme.psq_window_bounds";
    case MonitorId::kCcnvmeTxIdMonotonic: return "ccnvme.txid_monotonic";
    case MonitorId::kCcnvmeInOrderCompletion: return "ccnvme.in_order_completion";
    case MonitorId::kJournalCommitAfterBlocks: return "journal.commit_after_blocks";
    case MonitorId::kVolumeSealBeforeCommit: return "volume.seal_before_commit";
    case MonitorId::kRecoveryWindowScan: return "recovery.window_scan";
    case MonitorId::kFsyncCrossCoreOrder: return "fs.fsync_cross_core_order";
    case MonitorId::kNvlogDrainOrder: return "nvm.log_drain_order";
    case MonitorId::kFtlMapDataAtomicity: return "ftl.map_data_atomicity";
    case MonitorId::kNumMonitors: break;
  }
  return "?";
}

class InvariantMonitors {
 public:
  explicit InvariantMonitors(Simulator* sim);

  // --- src/pcie: a read fence must not pass posted writes -----------------
  // Called after MmioReadFence's wait with the drain horizon captured at
  // entry; now() must have reached it.
  void OnReadFence(uint64_t drain_horizon_ns);

  // --- src/nvme: per-HQ CQE slot order and phase-tag correctness ----------
  // Keyed by queue-pair identity; the monitor replays the expected
  // slot/phase sequence from the first observed post.
  void OnCqePost(const void* qp, uint16_t depth, uint16_t slot, bool phase);

  // --- src/ccnvme: doorbell, window, ordering -----------------------------
  void OnDoorbellRing(uint16_t device, uint16_t qid, uint16_t depth, uint32_t prev_tail,
                      uint32_t new_tail, uint32_t head, uint64_t staged,
                      uint64_t wc_pending_bytes);
  void OnTxCommitted(uint16_t device, uint16_t qid, uint64_t tx_id);
  void OnTxCompleted(uint16_t device, uint16_t qid, uint64_t tx_id, bool front_of_queue);
  void OnHeadAdvance(uint16_t device, uint16_t qid, uint16_t depth, uint32_t prev_head,
                     uint32_t new_head, uint32_t tail);
  // Offline bounds check of a scanned image's doorbells (journal_inspect).
  void OnWindowScan(uint16_t device, uint16_t qid, uint16_t depth, uint32_t head,
                    uint32_t tail);

  // --- src/jbd2 + src/mqfs: commit record strictly after member blocks ----
  // The journal declares how many members it staged for |tx_id| immediately
  // before issuing the commit record; the block layer counts actual stages
  // and checks the two at the commit record.
  void ExpectTxMembers(uint64_t tx_id, uint64_t members);
  void OnTxMemberStaged(uint64_t tx_id);
  void OnTxCommitRecord(uint64_t tx_id);
  // Classic (non-tx) journal: member writes still outstanding when the
  // commit record is issued.
  void OnJournalCommitRecord(uint64_t tx_id, uint64_t outstanding_members);

  // --- src/volume: every member seals before the commit-device ring -------
  void OnVolumeMemberSealed(uint64_t tx_id);
  void OnVolumeCommitRing(uint64_t tx_id, uint64_t expected_seals);

  // --- recovery: the in-doubt set must cover the whole window -------------
  void OnRecoveryWindowScan(uint64_t window_txs, uint64_t in_doubt_txs);

  // --- src/extfs: cross-core fsync aggregation ----------------------------
  // Fired as an fsync returns to its caller: the group-commit epoch the
  // caller registered (|required|) must be covered by a finished leader
  // commit (|covered|), or the caller was handed durability it doesn't have.
  void OnFsyncReturn(uint64_t ino, uint64_t required, uint64_t covered);

  // --- src/nvm: log-before-checkpoint drain order -------------------------
  // Fired as the NVLog drainer (or recovery) is about to checkpoint entry
  // |entry_seq| to the block stack: the NVM persist frontier |durable_seq|
  // must already cover it, or a crash between the two leaves a half-applied
  // sync with no durable log entry to replay it from.
  void OnNvlogCheckpoint(uint64_t entry_seq, uint64_t durable_seq);

  // --- src/nvme/kv_ssd: KV Store map+data atomicity ------------------------
  // Fired as a KV Store commits its directory meta word: the value's data
  // pages must be durable on media AND the shadow map-entry must have been
  // fenced into the PMR — otherwise a crash right after the commit word
  // lands leaves a mapping pointing at garbage (or a torn window with no
  // shadow to replay), breaking KV Store atomicity across FTL map + data.
  void OnKvCommit(uint64_t key_hash, bool data_durable, bool shadow_armed);

  // --- Reporting ----------------------------------------------------------
  uint64_t violations(MonitorId id) const { return stats_[Index(id)].count; }
  uint64_t first_violation_ns(MonitorId id) const { return stats_[Index(id)].first_ns; }
  uint64_t last_violation_ns(MonitorId id) const { return stats_[Index(id)].last_ns; }
  const std::string& last_detail(MonitorId id) const { return stats_[Index(id)].detail; }
  uint64_t total_violations() const;
  // One human-readable line per monitor with a nonzero count.
  std::vector<std::string> ViolationReport() const;

  void set_abort_on_violation(bool abort) { abort_on_violation_ = abort; }

  InvariantMonitors(const InvariantMonitors&) = delete;
  InvariantMonitors& operator=(const InvariantMonitors&) = delete;

 private:
  struct Stat {
    uint64_t count = 0;
    uint64_t first_ns = 0;
    uint64_t last_ns = 0;
    std::string detail;  // last offending condition, for reports
  };
  struct QueueState {
    uint64_t last_committed_tx = 0;
    uint64_t last_completed_tx = 0;
  };
  struct CqState {
    bool init = false;
    uint16_t expected_slot = 0;
    bool expected_phase = true;
  };
  struct TxState {
    uint64_t staged = 0;
    uint64_t expected = 0;
    bool has_expectation = false;
  };

  static size_t Index(MonitorId id) { return static_cast<size_t>(id); }
  static uint32_t QueueKey(uint16_t device, uint16_t qid) {
    return (static_cast<uint32_t>(device) << 16) | qid;
  }
  void Violate(MonitorId id, std::string detail);

  Simulator* sim_;
  bool abort_on_violation_ = false;
  std::array<Stat, kNumMonitors> stats_{};
  std::unordered_map<uint32_t, QueueState> queues_;
  std::unordered_map<const void*, CqState> cqs_;
  std::unordered_map<uint64_t, TxState> txs_;
  std::unordered_map<uint64_t, uint64_t> volume_seals_;
};

}  // namespace ccnvme

#endif  // SRC_METRICS_MONITORS_H_

#include "src/metrics/monitors.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace ccnvme {

namespace {

std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::string Format(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace

InvariantMonitors::InvariantMonitors(Simulator* sim) : sim_(sim) {}

void InvariantMonitors::Violate(MonitorId id, std::string detail) {
  Stat& s = stats_[Index(id)];
  const uint64_t now = sim_->now();
  if (s.count == 0) {
    s.first_ns = now;
  }
  s.count++;
  s.last_ns = now;
  s.detail = std::move(detail);
  if (abort_on_violation_) {
    std::fprintf(stderr, "invariant violation [%s] at t=%lluns: %s\n", MonitorName(id),
                 static_cast<unsigned long long>(now), s.detail.c_str());
    std::abort();
  }
}

void InvariantMonitors::OnReadFence(uint64_t drain_horizon_ns) {
  if (sim_->now() < drain_horizon_ns) {
    Violate(MonitorId::kPcieFenceOrdering,
            Format("fence returned at %llu before posted-write drain horizon %llu",
                   static_cast<unsigned long long>(sim_->now()),
                   static_cast<unsigned long long>(drain_horizon_ns)));
  }
}

void InvariantMonitors::OnCqePost(const void* qp, uint16_t depth, uint16_t slot,
                                  bool phase) {
  CqState& cq = cqs_[qp];
  if (!cq.init) {
    // Adopt the queue's current position; from here on the chain is forced.
    cq.init = true;
    cq.expected_slot = slot;
    cq.expected_phase = phase;
  }
  if (slot != cq.expected_slot) {
    Violate(MonitorId::kNvmeCqeSlotOrder,
            Format("CQE in slot %u, expected %u", slot, cq.expected_slot));
    cq.expected_slot = slot;  // resync so one bug isn't counted forever
  }
  if (phase != cq.expected_phase) {
    Violate(MonitorId::kNvmeCqePhaseTag,
            Format("CQE slot %u phase %d, expected %d", slot, phase ? 1 : 0,
                   cq.expected_phase ? 1 : 0));
    cq.expected_phase = phase;
  }
  cq.expected_slot = static_cast<uint16_t>(cq.expected_slot + 1);
  if (depth != 0 && cq.expected_slot == depth) {
    cq.expected_slot = 0;
    cq.expected_phase = !cq.expected_phase;
  }
}

void InvariantMonitors::OnDoorbellRing(uint16_t device, uint16_t qid, uint16_t depth,
                                       uint32_t prev_tail, uint32_t new_tail,
                                       uint32_t head, uint64_t staged,
                                       uint64_t wc_pending_bytes) {
  if (wc_pending_bytes != 0) {
    Violate(MonitorId::kCcnvmeFlushBeforeDoorbell,
            Format("q%u doorbell rung with %llu WC bytes unflushed", qid,
                   static_cast<unsigned long long>(wc_pending_bytes)));
  }
  const uint32_t advance =
      depth == 0 ? 0 : (new_tail + depth - prev_tail) % depth;
  if (advance != staged || (staged == 0 && new_tail != prev_tail)) {
    Violate(MonitorId::kCcnvmeDoorbellMonotonic,
            Format("q%u P-SQDB %u->%u advances %u but %llu SQEs staged", qid, prev_tail,
                   new_tail, advance, static_cast<unsigned long long>(staged)));
  }
  OnWindowScan(device, qid, depth, head, new_tail);
}

void InvariantMonitors::OnWindowScan(uint16_t device, uint16_t qid, uint16_t depth,
                                     uint32_t head, uint32_t tail) {
  (void)device;
  if (depth == 0 || head >= depth || tail >= depth) {
    Violate(MonitorId::kCcnvmePsqWindowBounds,
            Format("q%u window [head=%u, tail=%u) outside depth %u", qid, head, tail,
                   depth));
  }
}

void InvariantMonitors::OnTxCommitted(uint16_t device, uint16_t qid, uint64_t tx_id) {
  QueueState& q = queues_[QueueKey(device, qid)];
  if (tx_id <= q.last_committed_tx) {
    Violate(MonitorId::kCcnvmeTxIdMonotonic,
            Format("dev%u q%u committed tx %llu after tx %llu", device, qid,
                   static_cast<unsigned long long>(tx_id),
                   static_cast<unsigned long long>(q.last_committed_tx)));
  }
  q.last_committed_tx = std::max(q.last_committed_tx, tx_id);
}

void InvariantMonitors::OnTxCompleted(uint16_t device, uint16_t qid, uint64_t tx_id,
                                      bool front_of_queue) {
  QueueState& q = queues_[QueueKey(device, qid)];
  // Per-HQ durability must be delivered in order: a tx may only complete
  // from the front of its queue's inflight list, and the ids a queue
  // delivers must be increasing.
  if (!front_of_queue || tx_id <= q.last_completed_tx) {
    Violate(MonitorId::kCcnvmeInOrderCompletion,
            Format("dev%u q%u completed tx %llu %s(last completed %llu)", device, qid,
                   static_cast<unsigned long long>(tx_id),
                   front_of_queue ? "" : "out of queue order ",
                   static_cast<unsigned long long>(q.last_completed_tx)));
  }
  q.last_completed_tx = std::max(q.last_completed_tx, tx_id);
}

void InvariantMonitors::OnHeadAdvance(uint16_t device, uint16_t qid, uint16_t depth,
                                      uint32_t prev_head, uint32_t new_head,
                                      uint32_t tail) {
  (void)device;
  if (depth == 0) {
    return;
  }
  // The head chases the tail; it must stay inside the pre-advance window
  // [prev_head, tail] measured in ring order.
  const uint32_t window = (tail + depth - prev_head) % depth;
  const uint32_t advance = (new_head + depth - prev_head) % depth;
  if (new_head >= depth || advance > window) {
    Violate(MonitorId::kCcnvmePsqWindowBounds,
            Format("q%u P-SQ-head %u->%u overruns tail %u", qid, prev_head, new_head,
                   tail));
  }
}

void InvariantMonitors::ExpectTxMembers(uint64_t tx_id, uint64_t members) {
  TxState& tx = txs_[tx_id];
  tx.expected = members;
  tx.has_expectation = true;
}

void InvariantMonitors::OnTxMemberStaged(uint64_t tx_id) { txs_[tx_id].staged++; }

void InvariantMonitors::OnTxCommitRecord(uint64_t tx_id) {
  auto it = txs_.find(tx_id);
  const TxState tx = it == txs_.end() ? TxState{} : it->second;
  if (tx.has_expectation && tx.staged < tx.expected) {
    Violate(MonitorId::kJournalCommitAfterBlocks,
            Format("tx %llu commit record after %llu/%llu member blocks",
                   static_cast<unsigned long long>(tx_id),
                   static_cast<unsigned long long>(tx.staged),
                   static_cast<unsigned long long>(tx.expected)));
  }
  if (it != txs_.end()) {
    txs_.erase(it);
  }
}

void InvariantMonitors::OnJournalCommitRecord(uint64_t tx_id,
                                              uint64_t outstanding_members) {
  if (outstanding_members != 0) {
    Violate(MonitorId::kJournalCommitAfterBlocks,
            Format("tx %llu commit record with %llu member writes outstanding",
                   static_cast<unsigned long long>(tx_id),
                   static_cast<unsigned long long>(outstanding_members)));
  }
}

void InvariantMonitors::OnVolumeMemberSealed(uint64_t tx_id) { volume_seals_[tx_id]++; }

void InvariantMonitors::OnVolumeCommitRing(uint64_t tx_id, uint64_t expected_seals) {
  auto it = volume_seals_.find(tx_id);
  const uint64_t sealed = it == volume_seals_.end() ? 0 : it->second;
  if (sealed < expected_seals) {
    Violate(MonitorId::kVolumeSealBeforeCommit,
            Format("volume tx %llu commit ring after %llu/%llu member seals",
                   static_cast<unsigned long long>(tx_id),
                   static_cast<unsigned long long>(sealed),
                   static_cast<unsigned long long>(expected_seals)));
  }
  if (it != volume_seals_.end()) {
    volume_seals_.erase(it);
  }
}

void InvariantMonitors::OnRecoveryWindowScan(uint64_t window_txs, uint64_t in_doubt_txs) {
  if (in_doubt_txs < window_txs) {
    Violate(MonitorId::kRecoveryWindowScan,
            Format("recovery considered %llu of %llu window transactions",
                   static_cast<unsigned long long>(in_doubt_txs),
                   static_cast<unsigned long long>(window_txs)));
  }
}

void InvariantMonitors::OnFsyncReturn(uint64_t ino, uint64_t required, uint64_t covered) {
  if (covered < required) {
    Violate(MonitorId::kFsyncCrossCoreOrder,
            Format("fsync(ino=%llu) returned at epoch %llu but only %llu is durable",
                   static_cast<unsigned long long>(ino),
                   static_cast<unsigned long long>(required),
                   static_cast<unsigned long long>(covered)));
  }
}

void InvariantMonitors::OnNvlogCheckpoint(uint64_t entry_seq, uint64_t durable_seq) {
  if (entry_seq > durable_seq) {
    Violate(MonitorId::kNvlogDrainOrder,
            Format("nvlog entry %llu checkpointed but persist frontier is %llu",
                   static_cast<unsigned long long>(entry_seq),
                   static_cast<unsigned long long>(durable_seq)));
  }
}

void InvariantMonitors::OnKvCommit(uint64_t key_hash, bool data_durable, bool shadow_armed) {
  if (!data_durable || !shadow_armed) {
    Violate(MonitorId::kFtlMapDataAtomicity,
            Format("KV Store key=%016llx committed with data_durable=%d shadow_armed=%d",
                   static_cast<unsigned long long>(key_hash), data_durable ? 1 : 0,
                   shadow_armed ? 1 : 0));
  }
}

uint64_t InvariantMonitors::total_violations() const {
  uint64_t total = 0;
  for (const Stat& s : stats_) {
    total += s.count;
  }
  return total;
}

std::vector<std::string> InvariantMonitors::ViolationReport() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < kNumMonitors; ++i) {
    const Stat& s = stats_[i];
    if (s.count == 0) {
      continue;
    }
    out.push_back(Format("%s: %llu violation(s), first t=%lluns, last t=%lluns: %s",
                         MonitorName(static_cast<MonitorId>(i)),
                         static_cast<unsigned long long>(s.count),
                         static_cast<unsigned long long>(s.first_ns),
                         static_cast<unsigned long long>(s.last_ns), s.detail.c_str()));
  }
  return out;
}

}  // namespace ccnvme

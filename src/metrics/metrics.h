// Live metrics engine: interned counters/gauges/histograms, snapshot/delta
// semantics, per-request phase attribution, and the invariant monitors.
//
// The engine attaches to the Simulator exactly like the tracer
// (sim->set_metrics(&m)); instrumented components query sim->metrics() and
// skip all work when it is null. Determinism contract: every hot path is
// handle-indexed array arithmetic — no allocation, no simulator calls other
// than now(), no I/O — so enabling metrics provably changes no virtual
// timestamps (tests/metrics_test.cc fingerprints a run both ways).
//
// Phase attribution rides the tracer: Tracer::EndSpan forwards every
// completed span (already tagged with req/tx context via TraceContext) to
// Metrics::OnSpanEnd, which feeds a per-phase histogram. Benches that used
// to keep bespoke aggregations (fig14, table1) now read a MetricsSnapshot.
#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/metrics/monitors.h"
#include "src/trace/trace_point.h"

namespace ccnvme {

// Interned-handle metric store. Names are hashed exactly once, at Intern
// time (setup); hot paths index arrays through the returned handles.
class MetricsRegistry {
 public:
  using Handle = uint32_t;

  // Idempotent: interning an existing name returns its handle.
  Handle Counter(const std::string& name);
  Handle Gauge(const std::string& name);
  Handle Histo(const std::string& name);

  void Add(Handle h, uint64_t delta = 1) { counters_[h].value += delta; }
  void GaugeSet(Handle h, int64_t value) { gauges_[h].value = value; }
  void GaugeAdd(Handle h, int64_t delta) { gauges_[h].value += delta; }
  void Observe(Handle h, uint64_t value) { histos_[h].value.Add(value); }

  uint64_t counter(Handle h) const { return counters_[h].value; }
  int64_t gauge(Handle h) const { return gauges_[h].value; }
  const Histogram& histo(Handle h) const { return histos_[h].value; }

  // Zeroes every value but keeps all interned slots (handles stay valid).
  void ResetValues();

  // Name-keyed views for snapshotting (cold path).
  std::map<std::string, uint64_t> CounterView() const;
  std::map<std::string, int64_t> GaugeView() const;
  std::map<std::string, Histogram> HistoView() const;

 private:
  template <typename V>
  struct Slot {
    std::string name;
    V value{};
  };
  template <typename V>
  static Handle InternInto(std::vector<Slot<V>>* slots,
                           std::map<std::string, Handle>* index,
                           const std::string& name);

  std::vector<Slot<uint64_t>> counters_;
  std::vector<Slot<int64_t>> gauges_;
  std::vector<Slot<Histogram>> histos_;
  std::map<std::string, Handle> counter_index_;
  std::map<std::string, Handle> gauge_index_;
  std::map<std::string, Handle> histo_index_;
};

// Per-monitor summary carried in snapshots and exports.
struct MonitorStat {
  uint64_t violations = 0;
  uint64_t first_ns = 0;
  uint64_t last_ns = 0;
  std::string detail;
};

// A point-in-time copy of every metric. Cheap enough to take repeatedly in
// benches; DeltaSince yields the interval view two snapshots bracket.
struct MetricsSnapshot {
  uint64_t taken_at_ns = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;
  std::map<std::string, MonitorStat> monitors;

  // Counters/histograms subtract (this - earlier, clamped at zero); gauges
  // and monitor stats keep this snapshot's values (they are levels, not
  // accumulations).
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  uint64_t Counter(const std::string& name) const;
  const Histogram* Histo(const std::string& name) const;
  uint64_t TotalViolations() const;
};

// Facade the rest of the stack talks to: owns the registry + monitors and
// pre-interns one histogram per trace span point ("phase.<name>"), one
// counter per instant point ("event.<name>") and one per traffic counter,
// so the tracer-forwarded hot paths are pure array ops.
class Metrics {
 public:
  explicit Metrics(Simulator* sim);
  ~Metrics();

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  MetricsRegistry& registry() { return registry_; }
  InvariantMonitors& monitors() { return *monitors_; }
  const InvariantMonitors& monitors() const { return *monitors_; }

  // --- Hot paths, called by the tracer on every span/instant/counter ------
  void OnSpanEnd(TracePoint point, uint64_t dur_ns) {
    registry_.Observe(phase_histo_[static_cast<size_t>(point)], dur_ns);
  }
  void OnInstant(TracePoint point) {
    registry_.Add(event_counter_[static_cast<size_t>(point)]);
  }
  void OnTraceCounter(TraceCounter counter, uint64_t delta) {
    registry_.Add(traffic_counter_[static_cast<size_t>(counter)], delta);
  }
  // Tracer ring wraparound discarded an event of a still-open request.
  void OnRingDrop(uint64_t delta = 1) { registry_.Add(ring_drop_counter_, delta); }

  // Direct access to a phase histogram (bench/fig14 reads these live).
  const Histogram& PhaseHistogram(TracePoint point) const {
    return registry_.histo(phase_histo_[static_cast<size_t>(point)]);
  }
  uint64_t EventCount(TracePoint point) const {
    return registry_.counter(event_counter_[static_cast<size_t>(point)]);
  }
  uint64_t TrafficCount(TraceCounter counter) const {
    return registry_.counter(traffic_counter_[static_cast<size_t>(counter)]);
  }

  MetricsSnapshot TakeSnapshot() const;

  // Clears metric values for steady-state measurement (mirrors
  // Tracer::ResetAggregation). Monitor violation state is deliberately kept:
  // a violation during warmup is still a violation.
  void ResetAggregation();

 private:
  Simulator* sim_;
  MetricsRegistry registry_;
  std::unique_ptr<InvariantMonitors> monitors_;
  MetricsRegistry::Handle phase_histo_[kNumTracePoints];
  MetricsRegistry::Handle event_counter_[kNumTracePoints];
  MetricsRegistry::Handle traffic_counter_[kNumTraceCounters];
  MetricsRegistry::Handle ring_drop_counter_ = 0;
};

}  // namespace ccnvme

#endif  // SRC_METRICS_METRICS_H_

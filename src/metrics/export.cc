#include "src/metrics/export.h"

#include <cstdio>
#include <sstream>

#include "src/common/json.h"

namespace ccnvme {

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted names map
// onto that by rewriting everything else to '_'.
std::string PromName(const std::string& name) {
  std::string out = "ccnvme_";
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

void EmitHistogram(JsonWriter* w, const Histogram& h) {
  w->Open('{');
  w->Key("count", true);
  w->os << h.count();
  w->Key("sum", false);
  w->os << h.sum();
  w->Key("min", false);
  w->os << h.min();
  w->Key("max", false);
  w->os << h.max();
  w->Key("mean", false);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", h.Mean());
  w->os << buf;
  w->Key("p50", false);
  w->os << h.Percentile(0.5);
  w->Key("p90", false);
  w->os << h.Percentile(0.9);
  w->Key("p99", false);
  w->os << h.Percentile(0.99);
  w->Key("p999", false);
  w->os << h.Percentile(0.999);
  w->Close('}');
}

}  // namespace

std::string ExportJson(const MetricsSnapshot& snap, bool pretty) {
  JsonWriter w(pretty);
  w.Open('{');
  w.Key("taken_at_ns", true);
  w.os << snap.taken_at_ns;

  w.Key("counters", false);
  w.Open('{');
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    w.Key(name, first);
    w.os << value;
    first = false;
  }
  w.Close('}');

  w.Key("gauges", false);
  w.Open('{');
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    w.Key(name, first);
    w.os << value;
    first = false;
  }
  w.Close('}');

  w.Key("histograms", false);
  w.Open('{');
  first = true;
  for (const auto& [name, histo] : snap.histograms) {
    w.Key(name, first);
    EmitHistogram(&w, histo);
    first = false;
  }
  w.Close('}');

  w.Key("monitors", false);
  w.Open('{');
  first = true;
  for (const auto& [name, stat] : snap.monitors) {
    w.Key(name, first);
    w.Open('{');
    w.Key("violations", true);
    w.os << stat.violations;
    w.Key("first_ns", false);
    w.os << stat.first_ns;
    w.Key("last_ns", false);
    w.os << stat.last_ns;
    w.Key("detail", false);
    w.os << '"' << JsonEscape(stat.detail) << '"';
    w.Close('}');
    first = false;
  }
  w.Close('}');

  w.Close('}');
  if (pretty) {
    w.os << '\n';
  }
  return w.os.str();
}

std::string ExportPrometheusText(const MetricsSnapshot& snap) {
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, histo] : snap.histograms) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " summary\n";
    os << prom << "{quantile=\"0.5\"} " << histo.Percentile(0.5) << "\n";
    os << prom << "{quantile=\"0.9\"} " << histo.Percentile(0.9) << "\n";
    os << prom << "{quantile=\"0.99\"} " << histo.Percentile(0.99) << "\n";
    os << prom << "{quantile=\"0.999\"} " << histo.Percentile(0.999) << "\n";
    os << prom << "_sum " << histo.sum() << "\n";
    os << prom << "_count " << histo.count() << "\n";
  }
  os << "# TYPE ccnvme_monitor_violations_total counter\n";
  for (const auto& [name, stat] : snap.monitors) {
    os << "ccnvme_monitor_violations_total{monitor=\"" << name << "\"} "
       << stat.violations << "\n";
  }
  return os.str();
}

std::string ExportPrometheusText(const SnapshotStats& snap) {
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " summary\n";
    os << prom << "{quantile=\"0.5\"} " << h.p50 << "\n";
    os << prom << "{quantile=\"0.9\"} " << h.p90 << "\n";
    os << prom << "{quantile=\"0.99\"} " << h.p99 << "\n";
    os << prom << "{quantile=\"0.999\"} " << h.p999 << "\n";
    os << prom << "_sum " << h.sum << "\n";
    os << prom << "_count " << h.count << "\n";
  }
  os << "# TYPE ccnvme_monitor_violations_total counter\n";
  for (const auto& [name, stat] : snap.monitors) {
    os << "ccnvme_monitor_violations_total{monitor=\"" << name << "\"} "
       << stat.violations << "\n";
  }
  return os.str();
}

bool WriteSnapshotJson(const MetricsSnapshot& snap, const std::string& path) {
  const std::string json = ExportJson(snap, /*pretty=*/true);
  if (path.empty() || path == "-") {
    std::fputs(json.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

uint64_t SnapshotStats::TotalViolations() const {
  uint64_t total = 0;
  for (const auto& [name, stat] : monitors) {
    total += stat.violations;
  }
  return total;
}

bool ParseSnapshotJson(const std::string& text, SnapshotStats* out, std::string* error) {
  JsonValue root;
  if (!JsonParse(text, &root, error)) {
    return false;
  }
  if (root.type != JsonValue::Type::kObject) {
    if (error != nullptr) {
      *error = "snapshot is not a JSON object";
    }
    return false;
  }
  *out = SnapshotStats{};
  out->taken_at_ns = root.U64("taken_at_ns");
  if (const JsonValue* counters = root.Find("counters")) {
    for (const auto& [name, v] : counters->obj) {
      out->counters.emplace(name, static_cast<uint64_t>(v.num));
    }
  }
  if (const JsonValue* gauges = root.Find("gauges")) {
    for (const auto& [name, v] : gauges->obj) {
      out->gauges.emplace(name, static_cast<int64_t>(v.num));
    }
  }
  if (const JsonValue* histos = root.Find("histograms")) {
    for (const auto& [name, v] : histos->obj) {
      HistogramStat h;
      h.count = v.U64("count");
      h.sum = v.U64("sum");
      h.min = v.U64("min");
      h.max = v.U64("max");
      h.mean = v.Num("mean");
      h.p50 = v.U64("p50");
      h.p90 = v.U64("p90");
      h.p99 = v.U64("p99");
      h.p999 = v.U64("p999");
      out->histograms.emplace(name, h);
    }
  }
  if (const JsonValue* monitors = root.Find("monitors")) {
    for (const auto& [name, v] : monitors->obj) {
      MonitorStat m;
      m.violations = v.U64("violations");
      m.first_ns = v.U64("first_ns");
      m.last_ns = v.U64("last_ns");
      if (const JsonValue* detail = v.Find("detail")) {
        m.detail = detail->str;
      }
      out->monitors.emplace(name, std::move(m));
    }
  }
  return true;
}

bool ParseSnapshotFile(const std::string& text, std::vector<SnapshotStats>* out,
                       std::string* error) {
  out->clear();
  SnapshotStats whole;
  if (ParseSnapshotJson(text, &whole, nullptr)) {
    out->push_back(std::move(whole));
    return true;
  }
  // JSONL: one compact snapshot per non-empty line.
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    SnapshotStats snap;
    if (!ParseSnapshotJson(line, &snap, error)) {
      return false;
    }
    out->push_back(std::move(snap));
  }
  if (out->empty()) {
    if (error != nullptr) {
      *error = "no snapshots found";
    }
    return false;
  }
  return true;
}

}  // namespace ccnvme

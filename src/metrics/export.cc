#include "src/metrics/export.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

namespace ccnvme {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted names map
// onto that by rewriting everything else to '_'.
std::string PromName(const std::string& name) {
  std::string out = "ccnvme_";
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

struct JsonWriter {
  std::ostringstream os;
  bool pretty;
  int depth = 0;

  explicit JsonWriter(bool p) : pretty(p) {}

  void NewlineIndent() {
    if (!pretty) {
      return;
    }
    os << '\n';
    for (int i = 0; i < depth; ++i) {
      os << "  ";
    }
  }
  void Open(char c) {
    os << c;
    depth++;
  }
  void Close(char c) {
    depth--;
    NewlineIndent();
    os << c;
  }
  void Key(const std::string& k, bool first) {
    if (!first) {
      os << ',';
    }
    NewlineIndent();
    os << '"' << JsonEscape(k) << (pretty ? "\": " : "\":");
  }
};

void EmitHistogram(JsonWriter* w, const Histogram& h) {
  w->Open('{');
  w->Key("count", true);
  w->os << h.count();
  w->Key("sum", false);
  w->os << h.sum();
  w->Key("min", false);
  w->os << h.min();
  w->Key("max", false);
  w->os << h.max();
  w->Key("mean", false);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", h.Mean());
  w->os << buf;
  w->Key("p50", false);
  w->os << h.Percentile(0.5);
  w->Key("p90", false);
  w->os << h.Percentile(0.9);
  w->Key("p99", false);
  w->os << h.Percentile(0.99);
  w->Key("p999", false);
  w->os << h.Percentile(0.999);
  w->Close('}');
}

// --- Minimal JSON reader (objects/strings/numbers/bools), just enough to
// round-trip ExportJson output. ------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::map<std::string, JsonValue> obj;
  std::vector<JsonValue> arr;

  const JsonValue* Find(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
  uint64_t U64(const std::string& key, uint64_t fallback = 0) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->type == Type::kNumber ? static_cast<uint64_t>(v->num)
                                                    : fallback;
  }
  double Num(const std::string& key, double fallback = 0.0) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->type == Type::kNumber ? v->num : fallback;
  }
};

class JsonReader {
 public:
  JsonReader(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing data");
    }
    return true;
  }

 private:
  bool Fail(const std::string& why) {
    if (error_ != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "json parse error at offset %zu: %s", pos_,
                    why.c_str());
      *error_ = buf;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') {
      const std::string word = c == 't' ? "true" : "false";
      if (text_.compare(pos_, word.size(), word) != 0) {
        return Fail("bad literal");
      }
      pos_ += word.size();
      out->type = JsonValue::Type::kBool;
      out->b = c == 't';
      return true;
    }
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) {
        return Fail("bad literal");
      }
      pos_ += 4;
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    pos_++;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      pos_++;
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->obj.emplace(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == '}') {
        pos_++;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    pos_++;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      pos_++;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->arr.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (text_[pos_] == ']') {
        pos_++;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    pos_++;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'u':
          // Exported escapes are only control chars; decode the low byte.
          if (pos_ + 4 > text_.size()) {
            return Fail("bad \\u escape");
          }
          *out += static_cast<char>(std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          break;
        default: *out += esc;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      pos_++;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    out->type = JsonValue::Type::kNumber;
    out->num = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::string ExportJson(const MetricsSnapshot& snap, bool pretty) {
  JsonWriter w(pretty);
  w.Open('{');
  w.Key("taken_at_ns", true);
  w.os << snap.taken_at_ns;

  w.Key("counters", false);
  w.Open('{');
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    w.Key(name, first);
    w.os << value;
    first = false;
  }
  w.Close('}');

  w.Key("gauges", false);
  w.Open('{');
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    w.Key(name, first);
    w.os << value;
    first = false;
  }
  w.Close('}');

  w.Key("histograms", false);
  w.Open('{');
  first = true;
  for (const auto& [name, histo] : snap.histograms) {
    w.Key(name, first);
    EmitHistogram(&w, histo);
    first = false;
  }
  w.Close('}');

  w.Key("monitors", false);
  w.Open('{');
  first = true;
  for (const auto& [name, stat] : snap.monitors) {
    w.Key(name, first);
    w.Open('{');
    w.Key("violations", true);
    w.os << stat.violations;
    w.Key("first_ns", false);
    w.os << stat.first_ns;
    w.Key("last_ns", false);
    w.os << stat.last_ns;
    w.Key("detail", false);
    w.os << '"' << JsonEscape(stat.detail) << '"';
    w.Close('}');
    first = false;
  }
  w.Close('}');

  w.Close('}');
  if (pretty) {
    w.os << '\n';
  }
  return w.os.str();
}

std::string ExportPrometheusText(const MetricsSnapshot& snap) {
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, histo] : snap.histograms) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " summary\n";
    os << prom << "{quantile=\"0.5\"} " << histo.Percentile(0.5) << "\n";
    os << prom << "{quantile=\"0.9\"} " << histo.Percentile(0.9) << "\n";
    os << prom << "{quantile=\"0.99\"} " << histo.Percentile(0.99) << "\n";
    os << prom << "{quantile=\"0.999\"} " << histo.Percentile(0.999) << "\n";
    os << prom << "_sum " << histo.sum() << "\n";
    os << prom << "_count " << histo.count() << "\n";
  }
  os << "# TYPE ccnvme_monitor_violations_total counter\n";
  for (const auto& [name, stat] : snap.monitors) {
    os << "ccnvme_monitor_violations_total{monitor=\"" << name << "\"} "
       << stat.violations << "\n";
  }
  return os.str();
}

std::string ExportPrometheusText(const SnapshotStats& snap) {
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string prom = PromName(name);
    os << "# TYPE " << prom << " summary\n";
    os << prom << "{quantile=\"0.5\"} " << h.p50 << "\n";
    os << prom << "{quantile=\"0.9\"} " << h.p90 << "\n";
    os << prom << "{quantile=\"0.99\"} " << h.p99 << "\n";
    os << prom << "{quantile=\"0.999\"} " << h.p999 << "\n";
    os << prom << "_sum " << h.sum << "\n";
    os << prom << "_count " << h.count << "\n";
  }
  os << "# TYPE ccnvme_monitor_violations_total counter\n";
  for (const auto& [name, stat] : snap.monitors) {
    os << "ccnvme_monitor_violations_total{monitor=\"" << name << "\"} "
       << stat.violations << "\n";
  }
  return os.str();
}

bool WriteSnapshotJson(const MetricsSnapshot& snap, const std::string& path) {
  const std::string json = ExportJson(snap, /*pretty=*/true);
  if (path.empty() || path == "-") {
    std::fputs(json.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

uint64_t SnapshotStats::TotalViolations() const {
  uint64_t total = 0;
  for (const auto& [name, stat] : monitors) {
    total += stat.violations;
  }
  return total;
}

bool ParseSnapshotJson(const std::string& text, SnapshotStats* out, std::string* error) {
  JsonValue root;
  JsonReader reader(text, error);
  if (!reader.Parse(&root)) {
    return false;
  }
  if (root.type != JsonValue::Type::kObject) {
    if (error != nullptr) {
      *error = "snapshot is not a JSON object";
    }
    return false;
  }
  *out = SnapshotStats{};
  out->taken_at_ns = root.U64("taken_at_ns");
  if (const JsonValue* counters = root.Find("counters")) {
    for (const auto& [name, v] : counters->obj) {
      out->counters.emplace(name, static_cast<uint64_t>(v.num));
    }
  }
  if (const JsonValue* gauges = root.Find("gauges")) {
    for (const auto& [name, v] : gauges->obj) {
      out->gauges.emplace(name, static_cast<int64_t>(v.num));
    }
  }
  if (const JsonValue* histos = root.Find("histograms")) {
    for (const auto& [name, v] : histos->obj) {
      HistogramStat h;
      h.count = v.U64("count");
      h.sum = v.U64("sum");
      h.min = v.U64("min");
      h.max = v.U64("max");
      h.mean = v.Num("mean");
      h.p50 = v.U64("p50");
      h.p90 = v.U64("p90");
      h.p99 = v.U64("p99");
      h.p999 = v.U64("p999");
      out->histograms.emplace(name, h);
    }
  }
  if (const JsonValue* monitors = root.Find("monitors")) {
    for (const auto& [name, v] : monitors->obj) {
      MonitorStat m;
      m.violations = v.U64("violations");
      m.first_ns = v.U64("first_ns");
      m.last_ns = v.U64("last_ns");
      if (const JsonValue* detail = v.Find("detail")) {
        m.detail = detail->str;
      }
      out->monitors.emplace(name, std::move(m));
    }
  }
  return true;
}

bool ParseSnapshotFile(const std::string& text, std::vector<SnapshotStats>* out,
                       std::string* error) {
  out->clear();
  SnapshotStats whole;
  if (ParseSnapshotJson(text, &whole, nullptr)) {
    out->push_back(std::move(whole));
    return true;
  }
  // JSONL: one compact snapshot per non-empty line.
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    SnapshotStats snap;
    if (!ParseSnapshotJson(line, &snap, error)) {
      return false;
    }
    out->push_back(std::move(snap));
  }
  if (out->empty()) {
    if (error != nullptr) {
      *error = "no snapshots found";
    }
    return false;
  }
  return true;
}

}  // namespace ccnvme

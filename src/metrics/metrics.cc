#include "src/metrics/metrics.h"

#include <algorithm>

namespace ccnvme {

template <typename V>
MetricsRegistry::Handle MetricsRegistry::InternInto(
    std::vector<Slot<V>>* slots, std::map<std::string, Handle>* index,
    const std::string& name) {
  auto [it, inserted] = index->try_emplace(name, static_cast<Handle>(slots->size()));
  if (inserted) {
    slots->push_back(Slot<V>{name, V{}});
  }
  return it->second;
}

MetricsRegistry::Handle MetricsRegistry::Counter(const std::string& name) {
  return InternInto(&counters_, &counter_index_, name);
}

MetricsRegistry::Handle MetricsRegistry::Gauge(const std::string& name) {
  return InternInto(&gauges_, &gauge_index_, name);
}

MetricsRegistry::Handle MetricsRegistry::Histo(const std::string& name) {
  return InternInto(&histos_, &histo_index_, name);
}

void MetricsRegistry::ResetValues() {
  for (auto& slot : counters_) {
    slot.value = 0;
  }
  for (auto& slot : gauges_) {
    slot.value = 0;
  }
  for (auto& slot : histos_) {
    slot.value.Reset();
  }
}

std::map<std::string, uint64_t> MetricsRegistry::CounterView() const {
  std::map<std::string, uint64_t> out;
  for (const auto& slot : counters_) {
    out.emplace(slot.name, slot.value);
  }
  return out;
}

std::map<std::string, int64_t> MetricsRegistry::GaugeView() const {
  std::map<std::string, int64_t> out;
  for (const auto& slot : gauges_) {
    out.emplace(slot.name, slot.value);
  }
  return out;
}

std::map<std::string, Histogram> MetricsRegistry::HistoView() const {
  std::map<std::string, Histogram> out;
  for (const auto& slot : histos_) {
    out.emplace(slot.name, slot.value);
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  out.taken_at_ns = taken_at_ns;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    const uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    out.counters.emplace(name, value > base ? value - base : 0);
  }
  out.gauges = gauges;
  for (const auto& [name, histo] : histograms) {
    auto it = earlier.histograms.find(name);
    out.histograms.emplace(
        name, it == earlier.histograms.end() ? histo : histo.DiffSince(it->second));
  }
  out.monitors = monitors;
  return out;
}

uint64_t MetricsSnapshot::Counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

const Histogram* MetricsSnapshot::Histo(const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

uint64_t MetricsSnapshot::TotalViolations() const {
  uint64_t total = 0;
  for (const auto& [name, stat] : monitors) {
    total += stat.violations;
  }
  return total;
}

Metrics::Metrics(Simulator* sim)
    : sim_(sim), monitors_(std::make_unique<InvariantMonitors>(sim)) {
  for (size_t i = 0; i < kNumTracePoints; ++i) {
    const char* name = TracePointName(static_cast<TracePoint>(i));
    phase_histo_[i] = registry_.Histo(std::string("phase.") + name);
    event_counter_[i] = registry_.Counter(std::string("event.") + name);
  }
  for (size_t i = 0; i < kNumTraceCounters; ++i) {
    traffic_counter_[i] = registry_.Counter(TraceCounterName(static_cast<TraceCounter>(i)));
  }
  ring_drop_counter_ = registry_.Counter("trace.ring_dropped_open_req");
}

Metrics::~Metrics() = default;

MetricsSnapshot Metrics::TakeSnapshot() const {
  MetricsSnapshot snap;
  snap.taken_at_ns = sim_->now();
  snap.counters = registry_.CounterView();
  snap.gauges = registry_.GaugeView();
  snap.histograms = registry_.HistoView();
  for (size_t i = 0; i < kNumMonitors; ++i) {
    const MonitorId id = static_cast<MonitorId>(i);
    MonitorStat stat;
    stat.violations = monitors_->violations(id);
    stat.first_ns = monitors_->first_violation_ns(id);
    stat.last_ns = monitors_->last_violation_ns(id);
    stat.detail = monitors_->last_detail(id);
    snap.monitors.emplace(MonitorName(id), std::move(stat));
  }
  return snap;
}

void Metrics::ResetAggregation() { registry_.ResetValues(); }

}  // namespace ccnvme

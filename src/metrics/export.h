// Snapshot exporters + the parser tools/metrics_report uses to read dumps.
//
// Two wire formats from one MetricsSnapshot:
//  - JSON: full structured dump (counters, gauges, histogram summary stats,
//    monitor violations). StorageStack appends one compact line per run when
//    CCNVME_METRICS is set, so a bench sweep yields a JSONL file.
//  - Prometheus text exposition: counters, gauges, summary-style quantiles
//    and ccnvme_monitor_violations_total{monitor="..."} series. Metric names
//    have dots rewritten to underscores and a "ccnvme_" prefix.
#ifndef SRC_METRICS_EXPORT_H_
#define SRC_METRICS_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/metrics/metrics.h"

namespace ccnvme {

// |pretty| = indented multi-line; false = one compact line (JSONL-friendly).
std::string ExportJson(const MetricsSnapshot& snap, bool pretty = true);
std::string ExportPrometheusText(const MetricsSnapshot& snap);

// Writes |snap| as pretty JSON to |path| (empty or "-" = stdout). Returns
// false on I/O error. Shared by the --metrics[=path] CLI flags.
bool WriteSnapshotJson(const MetricsSnapshot& snap, const std::string& path);

// Flat histogram summary as serialized (buckets are not exported; the
// summary stats are what reports diff and display).
struct HistogramStat {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
};

// Parsed form of one exported JSON snapshot.
struct SnapshotStats {
  uint64_t taken_at_ns = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramStat> histograms;
  std::map<std::string, MonitorStat> monitors;

  uint64_t TotalViolations() const;
};

// Re-exports a parsed snapshot as Prometheus text (same format as the live
// exporter, with quantiles taken from the serialized summary stats). Lets
// tools/metrics_report convert a JSON dump without a live registry.
std::string ExportPrometheusText(const SnapshotStats& snap);

// Parses one JSON snapshot (as produced by ExportJson). Returns false and
// sets |error| on malformed input.
bool ParseSnapshotJson(const std::string& text, SnapshotStats* out, std::string* error);

// Parses a file's worth of snapshots: a single JSON document or JSONL (one
// compact snapshot per line, as the CCNVME_METRICS auto-dump appends).
bool ParseSnapshotFile(const std::string& text, std::vector<SnapshotStats>* out,
                       std::string* error);

}  // namespace ccnvme

#endif  // SRC_METRICS_EXPORT_H_

#include "src/ccnvme/ccnvme_driver.h"

#include "src/common/logging.h"
#include "src/metrics/metrics.h"
#include "src/trace/tracer.h"

namespace ccnvme {

CcNvmeDriver::CcNvmeDriver(Simulator* sim, PcieLink* link, NvmeController* controller,
                           const HostCosts& costs, const CcNvmeOptions& options)
    : sim_(sim), link_(link), controller_(controller), costs_(costs), options_(options) {
  const uint16_t depth = controller->config().queue_depth;
  CCNVME_CHECK_LE(PmrQueueBase(options.num_queues, depth), controller->pmr().size())
      << "P-SQs do not fit in the PMR";
  // Capture the unfinished window left behind by the previous boot BEFORE
  // the per-queue reinitialization below zeroes the persistent doorbells —
  // the upper layer's recovery consumes exactly this window (§4.4).
  recovered_window_ = ScanUnfinished(controller->pmr(), options_.num_queues, depth);
  for (uint16_t qid = 0; qid < options_.num_queues; ++qid) {
    auto q = std::make_unique<Queue>();
    Queue* raw = q.get();
    q->qid = qid;
    q->pmr_base = PmrQueueBase(qid, depth);
    q->wc = std::make_unique<WcBuffer>(link);
    q->irq_pending = std::make_unique<SimSemaphore>(sim, 0);
    q->submit_mu = std::make_unique<SimMutex>(sim);
    q->slot_available = std::make_unique<SimCondVar>(sim);
    q->qp = controller->CreateIoQueuePair(
        qid, /*sq_in_pmr=*/true, q->pmr_base,
        /*irq_handler=*/[raw] { raw->irq_pending->Release(); });
    q->cid_to_tx.resize(q->qp->depth);
    q->cid_callbacks.resize(q->qp->depth);
    q->cid_req.resize(q->qp->depth, 0);
    q->cid_staged_ns.resize(q->qp->depth, 0);
    q->cid_tx.resize(q->qp->depth, 0);
    for (uint16_t cid = 0; cid < q->qp->depth; ++cid) {
      q->free_cids.push_back(cid);
    }
    // Fresh queues: zero the persistent doorbell and head.
    controller->pmr().WriteU32(DoorbellOffset(*q), 0);
    controller->pmr().WriteU32(HeadOffset(*q), 0);
    queues_.push_back(std::move(q));
    sim->Spawn("ccnvme_bh" + std::to_string(qid), [this, raw] { BottomHalfLoop(raw); });
  }
}

size_t CcNvmeDriver::DoorbellOffset(const Queue& q) const {
  return q.pmr_base + static_cast<size_t>(q.qp->depth) * kSqeSize;
}

size_t CcNvmeDriver::HeadOffset(const Queue& q) const { return DoorbellOffset(q) + 4; }

void CcNvmeDriver::FlushAndRing(Queue& q, uint64_t tx_id) {
  q.wc->FlushPersistent();
  if (Tracer* tracer = sim_->tracer()) {
    tracer->InstantWith(TracePoint::kPsqFence,
                        {CurrentTraceContext().req_id, tx_id, device_id_});
    tracer->InstantWith(TracePoint::kPsqDoorbell,
                        {CurrentTraceContext().req_id, tx_id, device_id_}, q.sq_tail);
  }
  RecordPmr(BioOp::kPmrFence, q.qid, 0, {}, 0, tx_id);
  if (Metrics* m = sim_->metrics()) {
    // At the ring the WC buffer must already be persistent (flush-before-
    // doorbell) and the P-SQDB must advance by exactly the staged SQEs.
    m->monitors().OnDoorbellRing(device_id_, q.qid, q.qp->depth, q.last_rung_tail,
                                 q.sq_tail, q.psq_head, q.unrung_cids.size(),
                                 q.wc->pending_bytes());
  }
  PmrStoreU32(q, BioOp::kPmrDoorbell, DoorbellOffset(q), q.sq_tail, tx_id);
  link_->MmioWrite(4);
  controller_->RingSqDoorbell(q.qp, q.sq_tail);
  if (Tracer* tracer = sim_->tracer()) {
    // Each staged SQE was invisible to the device from the end of its WC
    // store until this doorbell — the coalescing window that transaction-
    // aware MMIO trades per-request doorbells for.
    const uint64_t rung_ns = sim_->now();
    for (uint16_t cid : q.unrung_cids) {
      tracer->WaitEdgeWith(WaitEdge::kDoorbellCoalesce,
                           {q.cid_req[cid], q.cid_tx[cid], device_id_},
                           q.cid_staged_ns[cid], rung_ns, cid);
    }
  }
  q.last_rung_tail = q.sq_tail;
  q.unrung_cids.clear();
}

void CcNvmeDriver::RecordPmr(BioOp op, uint16_t qid, size_t offset,
                             std::span<const uint8_t> bytes, uint32_t flags, uint64_t tx_id) {
  if (!recorder_) {
    return;
  }
  BioEvent ev;
  ev.op = op;
  ev.lba = offset;
  ev.flags = flags;
  ev.tx_id = tx_id;
  ev.qid = qid;
  ev.device = device_id_;
  ev.data.assign(bytes.begin(), bytes.end());
  recorder_(ev);
}

void CcNvmeDriver::PmrStoreU32(Queue& q, BioOp op, size_t offset, uint32_t value,
                               uint64_t tx_id) {
  controller_->pmr().WriteU32(offset, value);
  uint8_t raw[4];
  PutU32(raw, 0, value);
  RecordPmr(op, q.qid, offset, raw, /*flags=*/0, tx_id);
}

CcNvmeDriver::Queue& CcNvmeDriver::GetQueue(uint16_t qid) {
  CCNVME_CHECK_LT(qid, queues_.size());
  return *queues_[qid];
}

uint16_t CcNvmeDriver::StageCommand(Queue& q, NvmeCommand cmd, const Buffer* data) {
  Tracer* tracer = sim_->tracer();
  ScopedSpan span(tracer, TracePoint::kTxStage, cmd.opcode);
  // Stamp the submitter's trace id into the SQE unconditionally so the PMR
  // bytes do not depend on whether a tracer is attached.
  cmd.trace_req = CurrentTraceContext().req_id;
  SimLockGuard guard(*q.submit_mu);
  // The P-SQ window [P-SQ-head, tail) must stay intact for recovery, so a
  // slot is reusable only after P-SQ-head passes it.
  const uint64_t full_since = sim_->now();
  while (q.free_cids.empty() || q.qp->SlotAfter(q.sq_tail) == q.psq_head) {
    q.slot_available->Wait(*q.submit_mu);
  }
  if (tracer != nullptr) {
    tracer->WaitEdgeWith(WaitEdge::kSqFull, {cmd.trace_req, cmd.tx_id, device_id_},
                         full_since, sim_->now(), q.qid);
  }
  const uint16_t cid = q.free_cids.front();
  q.free_cids.pop_front();
  cmd.cid = cid;
  q.cid_req[cid] = cmd.trace_req;
  q.qp->data[cid].write_data = data;
  q.unrung_cids.push_back(cid);

  const uint16_t slot = q.sq_tail;
  q.sq_tail = q.qp->SlotAfter(slot);

  // Store the SQE into the PMR through the write-combining buffer: content
  // lands now; the burst + persistence fence are deferred to commit time
  // under transaction-aware MMIO.
  uint8_t raw[kSqeSize];
  cmd.Serialize(raw);
  controller_->pmr().Write(q.pmr_base + static_cast<size_t>(slot) * kSqeSize,
                           std::span<const uint8_t>(raw, kSqeSize));
  q.wc->Store(kSqeSize);
  q.cid_staged_ns[cid] = sim_->now();
  q.cid_tx[cid] = cmd.tx_id;
  if (tracer != nullptr) {
    tracer->InstantWith(TracePoint::kPsqStore, {cmd.trace_req, cmd.tx_id},
                        q.pmr_base + static_cast<size_t>(slot) * kSqeSize);
  }
  RecordPmr(BioOp::kPmrWrite, q.qid, q.pmr_base + static_cast<size_t>(slot) * kSqeSize,
            std::span<const uint8_t>(raw, kSqeSize), kBioPmrWc, cmd.tx_id);

  if (!options_.tx_aware_mmio) {
    // Naive per-request mode: flush and ring for every request.
    FlushAndRing(q, cmd.tx_id);
  }
  return cid;
}

void CcNvmeDriver::SubmitTx(uint16_t qid, uint64_t tx_id, uint64_t slba, const Buffer* data,
                            std::function<void()> on_complete) {
  CCNVME_CHECK(data != nullptr && !data->empty());
  CCNVME_CHECK_EQ(data->size() % kLbaSize, 0u);
  Queue& q = GetQueue(qid);
  Simulator::Sleep(costs_.ccnvme_stage_ns);

  if (q.open_tx == nullptr) {
    q.open_tx = std::make_shared<Transaction>(sim_);
    q.open_tx->tx_id = tx_id;
  }
  CCNVME_CHECK_EQ(q.open_tx->tx_id, tx_id)
      << "a transaction must be committed before the next one opens on a queue";

  NvmeCommand cmd;
  cmd.opcode = static_cast<uint8_t>(NvmeOpcode::kWrite);
  cmd.slba = slba;
  cmd.set_num_blocks(static_cast<uint32_t>(data->size() / kLbaSize));
  cmd.cdw12 |= kCdw12ReqTx;
  cmd.tx_id = tx_id;

  const uint16_t cid = StageCommand(q, cmd, data);
  q.cid_to_tx[cid] = q.open_tx;
  q.cid_callbacks[cid] = std::move(on_complete);
  q.open_tx->outstanding++;

  if (options_.tx_aware_mmio && options_.doorbell_coalesce_limit > 0 &&
      q.unrung_cids.size() >= options_.doorbell_coalesce_limit) {
    // Bounded coalescing window: make the staged members visible now rather
    // than at commit. The device may start executing them while the host is
    // still building the rest of the transaction.
    FlushAndRing(q, tx_id);
  }
}

CcNvmeDriver::TxHandle CcNvmeDriver::CommitTx(uint16_t qid, uint64_t tx_id, uint64_t slba,
                                              const Buffer* data,
                                              std::function<void()> on_durable) {
  CCNVME_CHECK(data != nullptr && !data->empty());
  Queue& q = GetQueue(qid);
  Tracer* tracer = sim_->tracer();
  ScopedSpan span(tracer, TracePoint::kTxCommit);
  Simulator::Sleep(costs_.ccnvme_stage_ns);

  if (q.open_tx == nullptr) {
    q.open_tx = std::make_shared<Transaction>(sim_);
    q.open_tx->tx_id = tx_id;
  }
  TxHandle tx = q.open_tx;
  CCNVME_CHECK_EQ(tx->tx_id, tx_id);
  if (on_durable) {
    tx->on_durable.push_back(std::move(on_durable));
  }

  const SsdConfig& ssd = controller_->ssd().config();
  const bool needs_flush = ssd.volatile_cache && !ssd.power_loss_protection;
  if (needs_flush) {
    // §4.2: the commit request implicitly flushes the device, "by issuing a
    // flush command first and setting the FUA bit in the I/O command".
    NvmeCommand flush;
    flush.opcode = static_cast<uint8_t>(NvmeOpcode::kFlush);
    flush.cdw12 |= kCdw12ReqTx;
    flush.tx_id = tx_id;
    const uint16_t fcid = StageCommand(q, flush, nullptr);
    q.cid_to_tx[fcid] = tx;
    tx->outstanding++;
  }

  NvmeCommand cmd;
  cmd.opcode = static_cast<uint8_t>(NvmeOpcode::kWrite);
  cmd.slba = slba;
  cmd.set_num_blocks(static_cast<uint32_t>(data->size() / kLbaSize));
  cmd.cdw12 |= kCdw12ReqTx | kCdw12ReqTxCommit;
  if (needs_flush) {
    cmd.cdw12 |= kCdw12Fua;
  }
  cmd.tx_id = tx_id;
  const uint16_t cid = StageCommand(q, cmd, data);
  q.cid_to_tx[cid] = tx;
  tx->outstanding++;

  if (options_.tx_aware_mmio) {
    // Transaction-aware MMIO & doorbell: one persistence flush and one
    // doorbell ring for the whole transaction (Figure 4(b)).
    FlushAndRing(q, tx_id);
  }

  tx->committed = true;
  tx->end_slot = q.sq_tail;
  q.inflight_txs.push_back(tx);
  q.open_tx = nullptr;
  // Atomicity point: P-SQ entries are persistent and the persistent
  // doorbell has been rung. A crash from here on recovers all-or-nothing
  // with "all" available once the device drains the queue.
  tx->atomic_at_ns = sim_->now();
  if (Metrics* m = sim_->metrics()) {
    m->monitors().OnTxCommitted(device_id_, q.qid, tx_id);
  }
  if (tracer != nullptr) {
    tracer->InstantWith(TracePoint::kTxAtomic,
                        {CurrentTraceContext().req_id, tx_id, device_id_});
  }
  return tx;
}

CcNvmeDriver::TxHandle CcNvmeDriver::SealTx(uint16_t qid, uint64_t tx_id,
                                            std::function<void()> on_durable) {
  Queue& q = GetQueue(qid);
  Tracer* tracer = sim_->tracer();
  Simulator::Sleep(costs_.ccnvme_stage_ns);

  CCNVME_CHECK(q.open_tx != nullptr) << "SealTx with no staged requests on queue " << qid;
  TxHandle tx = q.open_tx;
  CCNVME_CHECK_EQ(tx->tx_id, tx_id);
  if (on_durable) {
    tx->on_durable.push_back(std::move(on_durable));
  }

  const SsdConfig& ssd = controller_->ssd().config();
  if (ssd.volatile_cache && !ssd.power_loss_protection) {
    // No commit record to carry the FUA bit here, so a flush command rides
    // with the members: the sealed transaction's in-order completion then
    // still implies its slices are durable (§4.2 applied per member).
    NvmeCommand flush;
    flush.opcode = static_cast<uint8_t>(NvmeOpcode::kFlush);
    flush.cdw12 |= kCdw12ReqTx;
    flush.tx_id = tx_id;
    const uint16_t fcid = StageCommand(q, flush, nullptr);
    q.cid_to_tx[fcid] = tx;
    tx->outstanding++;
  }

  if (options_.tx_aware_mmio) {
    FlushAndRing(q, tx_id);
  }
  tx->committed = true;
  tx->end_slot = q.sq_tail;
  q.inflight_txs.push_back(tx);
  q.open_tx = nullptr;
  tx->atomic_at_ns = sim_->now();
  if (Metrics* m = sim_->metrics()) {
    m->monitors().OnTxCommitted(device_id_, q.qid, tx_id);
  }
  if (tracer != nullptr) {
    tracer->InstantWith(TracePoint::kTxAtomic,
                        {CurrentTraceContext().req_id, tx_id, device_id_});
  }
  return tx;
}

void CcNvmeDriver::AbortOpenTx(uint16_t qid) {
  Queue& q = GetQueue(qid);
  if (q.open_tx == nullptr) {
    return;
  }
  for (uint16_t cid : q.unrung_cids) {
    q.cid_to_tx[cid] = nullptr;
    q.cid_callbacks[cid] = nullptr;
    q.cid_req[cid] = 0;
    q.qp->data[cid] = IoQueuePair::DataRef{};
    q.free_cids.push_back(cid);
  }
  q.unrung_cids.clear();
  q.sq_tail = q.last_rung_tail;
  q.wc->Discard();
  q.open_tx = nullptr;
  q.slot_available->NotifyAll();
}

void CcNvmeDriver::WaitDurable(const TxHandle& tx) {
  const uint64_t begin = sim_->now();
  tx->durable.Wait();
  if (Tracer* tracer = sim_->tracer()) {
    tracer->WaitEdgeWith(WaitEdge::kTxDurable,
                         {CurrentTraceContext().req_id, tx->tx_id, device_id_}, begin,
                         sim_->now());
  }
}

void CcNvmeDriver::CompleteReadyTransactions(Queue& q) {
  bool advanced = false;
  if (options_.in_order_completion) {
    while (!q.inflight_txs.empty()) {
      TxHandle& front = q.inflight_txs.front();
      if (!front->committed || front->outstanding != 0) {
        break;
      }
      TxHandle tx = front;
      q.inflight_txs.pop_front();
      // Chain the completion doorbell: persistently advance P-SQ-head, then
      // ring the CQDB (§4.4). The head store is uncached: durable the moment
      // it issues, which is what lets recovery trust everything behind it.
      if (Metrics* m = sim_->metrics()) {
        m->monitors().OnTxCompleted(device_id_, q.qid, tx->tx_id,
                                    /*front_of_queue=*/true);
        m->monitors().OnHeadAdvance(device_id_, q.qid, q.qp->depth, q.psq_head,
                                    tx->end_slot, q.last_rung_tail);
      }
      q.psq_head = tx->end_slot;
      if (Tracer* t = sim_->tracer()) {
        t->InstantWith(TracePoint::kPsqHead, {0, tx->tx_id, device_id_}, q.psq_head);
      }
      PmrStoreU32(q, BioOp::kPmrWrite, HeadOffset(q), q.psq_head, tx->tx_id);
      link_->MmioWrite(4);
      link_->MmioWrite(4);
      controller_->RingCqDoorbell(q.qp, q.cq_head);
      advanced = true;
      tx->durable_at_ns = sim_->now();
      if (Tracer* t = sim_->tracer()) {
        t->InstantWith(TracePoint::kTxDurable, {0, tx->tx_id, device_id_});
      }
      transactions_completed_++;
      for (auto& cb : tx->on_durable) {
        cb();
      }
      tx->durable.Signal();
    }
  } else {
    // Ablation: complete transactions as soon as their own requests finish,
    // ignoring queue order. Breaks the recovery window contract.
    for (auto it = q.inflight_txs.begin(); it != q.inflight_txs.end();) {
      TxHandle tx = *it;
      if (tx->committed && tx->outstanding == 0) {
        const bool was_front = it == q.inflight_txs.begin();
        if (Metrics* m = sim_->metrics()) {
          m->monitors().OnTxCompleted(device_id_, q.qid, tx->tx_id, was_front);
        }
        it = q.inflight_txs.erase(it);
        if (q.inflight_txs.empty()) {
          q.psq_head = tx->end_slot;
          PmrStoreU32(q, BioOp::kPmrWrite, HeadOffset(q), q.psq_head, tx->tx_id);
          link_->MmioWrite(4);
        }
        link_->MmioWrite(4);
        controller_->RingCqDoorbell(q.qp, q.cq_head);
        advanced = true;
        tx->durable_at_ns = sim_->now();
        transactions_completed_++;
        for (auto& cb : tx->on_durable) {
          cb();
        }
        tx->durable.Signal();
      } else {
        ++it;
      }
    }
  }
  if (advanced) {
    q.slot_available->NotifyAll();
  }
}

void CcNvmeDriver::BottomHalfLoop(Queue* q) {
  IoQueuePair* qp = q->qp;
  for (;;) {
    q->irq_pending->Acquire();
    while (q->irq_pending->TryAcquire()) {
    }
    Simulator::Sleep(costs_.irq_context_switch_ns);

    for (;;) {
      const size_t off = static_cast<size_t>(q->cq_head) * kCqeSize;
      const NvmeCompletion cqe = NvmeCompletion::Parse(
          std::span<const uint8_t>(qp->host_cq).subspan(off, kCqeSize));
      if (cqe.phase != q->cq_phase) {
        break;
      }
      Simulator::Sleep(costs_.irq_per_cqe_ns);
      TxHandle tx = q->cid_to_tx[cqe.cid];
      CCNVME_CHECK(tx != nullptr) << "ccNVMe completion for idle cid " << cqe.cid;
      ScopedTraceContext trace_ctx({q->cid_req[cqe.cid], tx->tx_id, device_id_});
      if (Tracer* t = sim_->tracer()) t->Instant(TracePoint::kCqeHandled, cqe.cid);
      q->cid_to_tx[cqe.cid] = nullptr;
      qp->data[cqe.cid] = IoQueuePair::DataRef{};
      q->free_cids.push_back(cqe.cid);
      tx->outstanding--;
      if (q->cid_callbacks[cqe.cid]) {
        q->cid_callbacks[cqe.cid]();
        q->cid_callbacks[cqe.cid] = nullptr;
      }

      q->cq_head = qp->SlotAfter(q->cq_head);
      if (q->cq_head == 0) {
        q->cq_phase = !q->cq_phase;
      }
    }
    CompleteReadyTransactions(*q);
  }
}

std::vector<CcNvmeDriver::UnfinishedRequest> CcNvmeDriver::ScanUnfinished(
    const Pmr& pmr, uint16_t num_queues, uint16_t queue_depth) {
  std::vector<UnfinishedRequest> out;
  for (uint16_t qid = 0; qid < num_queues; ++qid) {
    const size_t base = PmrQueueBase(qid, queue_depth);
    const size_t db_off = base + static_cast<size_t>(queue_depth) * kSqeSize;
    const uint32_t tail = pmr.ReadU32(db_off);
    const uint32_t head = pmr.ReadU32(db_off + 4);
    if (tail >= queue_depth || head >= queue_depth) {
      // Garbage doorbell values (wrong image / never-initialized queue):
      // treat the queue as empty rather than walking a bogus window.
      continue;
    }
    for (uint32_t slot = head; slot != tail; slot = (slot + 1) % queue_depth) {
      uint8_t raw[kSqeSize];
      pmr.Read(base + static_cast<size_t>(slot) * kSqeSize,
               std::span<uint8_t>(raw, kSqeSize));
      const NvmeCommand cmd = NvmeCommand::Parse(raw);
      UnfinishedRequest req;
      req.qid = qid;
      req.tx_id = cmd.tx_id;
      req.slba = cmd.slba;
      req.num_blocks = cmd.is_io() ? cmd.num_blocks() : 0;
      req.is_commit = cmd.is_tx_commit();
      out.push_back(req);
    }
  }
  return out;
}

}  // namespace ccnvme

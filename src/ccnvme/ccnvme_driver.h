// ccNVMe driver — the paper's core contribution (§4).
//
// Extends the NVMe host driver with crash-consistent transactions by
// coupling crash consistency to the data-dissemination mechanism:
//
//   * Persistent submission queues (P-SQ) and their doorbells (P-SQDB) and
//     completion pointers (P-SQ-head) live in the SSD's PMR, so the life
//     cycle of every request survives a power cut.
//   * Transaction-aware MMIO (§4.3): member SQEs are stored into the
//     write-combining buffer; ONE clflush+mfence+zero-length-read flush and
//     ONE doorbell ring happen at commit, regardless of transaction size.
//   * Atomicity is guaranteed the moment the P-SQDB is rung (two MMIOs) —
//     this is the MQFS-A point; durability arrives with the in-order
//     transaction completion (§4.4) — the MQFS point.
//   * Completion is transaction-ordered per hardware queue: a transaction
//     completes only after all its requests AND all preceding transactions
//     on that queue complete ("first-come-first-complete"); the driver then
//     chains the completion doorbell — persistently advancing P-SQ-head and
//     ringing the CQDB.
//   * Crash recovery (§4.4): the P-SQ window [P-SQ-head, P-SQDB) of each
//     queue identifies transactions whose completion is not guaranteed; the
//     upper layer replays the finished ones (validated by its own
//     checksums) and discards the rest.
//
// A transaction must stay on one hardware queue (§4.5); this driver CHECKs
// that rule.
#ifndef SRC_CCNVME_CCNVME_DRIVER_H_
#define SRC_CCNVME_CCNVME_DRIVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/block/bio_event.h"
#include "src/common/status.h"
#include "src/driver/host_costs.h"
#include "src/nvme/controller.h"
#include "src/pcie/wc_buffer.h"
#include "src/sim/sync.h"

namespace ccnvme {

struct CcNvmeOptions {
  uint16_t num_queues = 1;
  // Transaction-aware MMIO & doorbell (§4.3). When false, every staged
  // request is individually flushed and its doorbell rung — the naive
  // per-request mode the paper uses as the strawman (N flushes + N rings).
  bool tx_aware_mmio = true;
  // In-order transaction completion (§4.4). Disabling it breaks the
  // recovery contract; the toggle exists so tests can demonstrate that.
  bool in_order_completion = true;
  // Doorbell coalescing window, in staged member SQEs. 0 = unbounded (the
  // paper's §4.3 default: ONE flush + ONE ring at commit, so a member stays
  // invisible to the device until the whole transaction is built). A value
  // K > 0 flushes + rings after every K staged members, bounding each SQE's
  // wait.doorbell_coalesce window at the price of extra MMIO flushes — the
  // real knob behind the what-if engine's virtual-speedup prediction for
  // that edge. Early rings are protocol-safe: like SealTx, they only widen
  // the in-doubt window [P-SQ-head, P-SQDB) with uncommitted members, which
  // recovery already discards (atomicity still hinges solely on the commit
  // record's doorbell).
  uint16_t doorbell_coalesce_limit = 0;
};

class CcNvmeDriver {
 public:
  struct Transaction {
    explicit Transaction(Simulator* sim) : durable(sim) {}
    uint64_t tx_id = 0;
    // Signaled when the transaction is durably completed (in order).
    SimCompletion durable;
    // Virtual timestamps of the two guarantee points, for latency studies.
    uint64_t atomic_at_ns = 0;
    uint64_t durable_at_ns = 0;

    // Internal bookkeeping.
    int outstanding = 0;
    bool committed = false;
    uint16_t end_slot = 0;
    std::vector<std::function<void()>> on_durable;
  };
  using TxHandle = std::shared_ptr<Transaction>;

  CcNvmeDriver(Simulator* sim, PcieLink* link, NvmeController* controller,
               const HostCosts& costs, const CcNvmeOptions& options);

  // Stages one atomic write (REQ_TX) on |qid|'s open transaction. All
  // requests of a transaction must use the same qid and tx_id. |data| must
  // stay alive until the transaction completes durably. |on_complete| fires
  // when THIS request's CQE arrives (possibly before the transaction
  // completes) — used to release frozen pages early.
  void SubmitTx(uint16_t qid, uint64_t tx_id, uint64_t slba, const Buffer* data,
                std::function<void()> on_complete = nullptr);

  // Stages the commit request (REQ_TX_COMMIT) and performs the
  // transaction-aware flush + doorbell. On return the transaction is
  // ATOMIC: after any crash it is recovered completely or not at all.
  // On drives with a volatile cache (no PLP) the commit is made durable via
  // a flush barrier + FUA commit record, as §4.2 prescribes.
  TxHandle CommitTx(uint16_t qid, uint64_t tx_id, uint64_t slba, const Buffer* data,
                    std::function<void()> on_durable = nullptr);

  // Closes |qid|'s open transaction WITHOUT staging a commit record: one
  // persistence flush + one doorbell ring over the staged member SQEs, then
  // the transaction completes in order like any other. This is the member
  // half of a cross-device volume commit — every member device's slices
  // must be persistently submitted (sealed) before the volume rings the
  // commit device's REQ_TX_COMMIT doorbell. On drives with a volatile cache
  // a flush command rides along so completion still implies durability.
  TxHandle SealTx(uint16_t qid, uint64_t tx_id, std::function<void()> on_durable = nullptr);

  // Drops |qid|'s open (not yet committed/sealed) transaction: staged but
  // unrung SQEs are reclaimed, the tail rewinds to the last rung value and
  // the WC buffer is discarded. The persistent window [P-SQ-head, P-SQDB)
  // is untouched — the doorbell was never advanced, so recovery never sees
  // the aborted requests. Used when a volume member device is failed while
  // a transaction is being built on it.
  void AbortOpenTx(uint16_t qid);

  // Blocks until |tx| is durable.
  void WaitDurable(const TxHandle& tx);

  // --- Crash recovery ----------------------------------------------------

  struct UnfinishedRequest {
    uint16_t qid = 0;
    uint64_t tx_id = 0;
    uint64_t slba = 0;
    uint32_t num_blocks = 0;
    bool is_commit = false;
    // Member index, stamped by the volume layer when windows of several
    // devices are unioned (0 on single-device stacks).
    uint16_t device = 0;
  };
  // Parses a PMR image (typically from a previous "boot") and returns the
  // requests in every queue's unfinished window [P-SQ-head, P-SQDB).
  static std::vector<UnfinishedRequest> ScanUnfinished(const Pmr& pmr, uint16_t num_queues,
                                                       uint16_t queue_depth);

  // The unfinished window found in the PMR at driver bring-up, captured
  // BEFORE the driver reinitializes the persistent doorbells (§4.4: the
  // window identifies transactions whose completion is not guaranteed; the
  // upper layer validates exactly those during its recovery). Empty on a
  // factory-fresh device.
  const std::vector<UnfinishedRequest>& recovered_window() const { return recovered_window_; }

  // Observer for the crash-state recorder: every PMR mutation (SQE staging,
  // persistence fences, doorbell rings, head advances) is reported so a
  // crash tester can reconstruct the PMR bytes at any point of a run.
  void set_recorder(BioRecorder recorder) { recorder_ = std::move(recorder); }

  // PMR layout: per queue, the SQE ring followed by P-SQDB and P-SQ-head.
  static size_t PmrRegionSize(uint16_t queue_depth) {
    return static_cast<size_t>(queue_depth) * kSqeSize + 64;
  }
  static size_t PmrQueueBase(uint16_t qid, uint16_t queue_depth) {
    return static_cast<size_t>(qid) * PmrRegionSize(queue_depth);
  }

  uint16_t num_queues() const { return options_.num_queues; }
  const CcNvmeOptions& options() const { return options_; }

  // Member index within a multi-device volume, stamped into every recorded
  // event and trace context so the crash model reconstructs each device's
  // PMR separately. 0 for single-device stacks.
  void set_device_id(uint16_t device) { device_id_ = device; }
  uint16_t device_id() const { return device_id_; }

  // Number of transactions durably completed (tests/benches).
  uint64_t transactions_completed() const { return transactions_completed_; }

 private:
  struct Queue {
    IoQueuePair* qp = nullptr;
    uint16_t qid = 0;
    size_t pmr_base = 0;
    std::unique_ptr<WcBuffer> wc;
    uint16_t sq_tail = 0;
    uint16_t psq_head = 0;  // host copy of the persistent head
    // Tail value of the last doorbell ring, and the cids staged since: an
    // abort rewinds to here (the device never saw anything past it).
    uint16_t last_rung_tail = 0;
    std::vector<uint16_t> unrung_cids;
    uint16_t cq_head = 0;
    bool cq_phase = true;
    TxHandle open_tx;
    std::deque<TxHandle> inflight_txs;
    std::vector<TxHandle> cid_to_tx;
    std::vector<std::function<void()>> cid_callbacks;
    // Trace request id per staged cid, restored on the bottom-half actor
    // when the matching CQE arrives.
    std::vector<uint64_t> cid_req;
    // Virtual time each staged-but-unrung cid finished staging; the gap to
    // the doorbell ring is its coalescing wait edge.
    std::vector<uint64_t> cid_staged_ns;
    // tx_id per staged cid, for wait-edge attribution at ring time.
    std::vector<uint64_t> cid_tx;
    std::deque<uint16_t> free_cids;
    std::unique_ptr<SimSemaphore> irq_pending;
    std::unique_ptr<SimMutex> submit_mu;
    std::unique_ptr<SimCondVar> slot_available;
  };

  size_t DoorbellOffset(const Queue& q) const;
  size_t HeadOffset(const Queue& q) const;
  // One persistence flush + one P-SQDB ring covering everything staged on
  // |q| (the transaction-aware MMIO sequence shared by commit and seal).
  void FlushAndRing(Queue& q, uint64_t tx_id);
  // Reports a PMR mutation to the crash-state recorder (no-op when unset).
  void RecordPmr(BioOp op, uint16_t qid, size_t offset, std::span<const uint8_t> bytes,
                 uint32_t flags, uint64_t tx_id);
  // Uncached 4-byte PMR store (doorbell/head) + recorder notification.
  void PmrStoreU32(Queue& q, BioOp op, size_t offset, uint32_t value, uint64_t tx_id);
  // Stages a command into the P-SQ via WC stores; returns the slot used.
  uint16_t StageCommand(Queue& q, NvmeCommand cmd, const Buffer* data);
  void BottomHalfLoop(Queue* q);
  void CompleteReadyTransactions(Queue& q);
  Queue& GetQueue(uint16_t qid);

  Simulator* sim_;
  PcieLink* link_;
  NvmeController* controller_;
  HostCosts costs_;
  CcNvmeOptions options_;
  std::vector<std::unique_ptr<Queue>> queues_;
  uint64_t transactions_completed_ = 0;
  std::vector<UnfinishedRequest> recovered_window_;
  BioRecorder recorder_;
  uint16_t device_id_ = 0;
};

}  // namespace ccnvme

#endif  // SRC_CCNVME_CCNVME_DRIVER_H_

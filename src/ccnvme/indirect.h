// The paper's indirect evaluation implementation (§6, Figure 9(b)).
//
// The authors' commercial test SSDs had no PMR, so they wrapped each test
// SSD with a second, PMR-capable SSD: ccNVMe performs its queue and
// doorbell operations (persistent MMIOs) against the PMR SSD, then forwards
// the request to the test SSD through the ordinary block layer; on
// completion it rings the completion doorbell on the PMR SSD. The MMIOs are
// therefore duplicated (one set to each device) while block I/O and MSI-X
// remain single — so measurements on this implementation are a lower bound
// on the ideal single-device design of Figure 9(a).
//
// This class reproduces that topology: a second PcieLink+Pmr pair stands in
// for the PMR SSD; data rides a stock NvmeDriver attached to the test SSD.
// bench/fig9_indirect compares it against the ideal CcNvmeDriver.
#ifndef SRC_CCNVME_INDIRECT_H_
#define SRC_CCNVME_INDIRECT_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/ccnvme/ccnvme_driver.h"
#include "src/driver/nvme_driver.h"
#include "src/pcie/wc_buffer.h"

namespace ccnvme {

class IndirectCcNvme {
 public:
  struct Transaction {
    explicit Transaction(Simulator* sim) : durable(sim) {}
    uint64_t tx_id = 0;
    SimCompletion durable;
    uint64_t atomic_at_ns = 0;
    uint64_t durable_at_ns = 0;
    int outstanding = 0;
    bool committed = false;
    uint16_t end_slot = 0;
  };
  using TxHandle = std::shared_ptr<Transaction>;

  // |pmr_link| and |pmr| model the wrapping PMR SSD; |nvme| is the driver
  // of the test SSD (carries the data path).
  IndirectCcNvme(Simulator* sim, PcieLink* pmr_link, Pmr* pmr, NvmeDriver* nvme,
                 const HostCosts& costs, uint16_t num_queues, uint16_t queue_depth = 256);

  void SubmitTx(uint16_t qid, uint64_t tx_id, uint64_t slba, const Buffer* data);
  TxHandle CommitTx(uint16_t qid, uint64_t tx_id, uint64_t slba, const Buffer* data);
  void WaitDurable(const TxHandle& tx) { tx->durable.Wait(); }

  uint64_t transactions_completed() const { return completed_; }

 private:
  struct PendingForward {
    uint64_t slba;
    const Buffer* data;
    uint32_t tx_flags;
  };
  struct Queue {
    size_t pmr_base = 0;
    std::unique_ptr<WcBuffer> wc;
    uint16_t sq_tail = 0;
    uint16_t psq_head = 0;
    TxHandle open_tx;
    std::deque<TxHandle> inflight;
    // Requests staged on the PMR SSD but not yet forwarded to the test SSD:
    // forwarding happens at commit, mirroring the ideal design's
    // transaction-aware doorbell (the device must not see a transaction
    // before its atomicity point).
    std::vector<PendingForward> pending;
  };

  // Duplicated MMIO set: stage the SQE into the PMR SSD's P-SQ, then
  // forward the request to the test SSD (whose driver pays its own MMIOs).
  void StageToPmr(Queue& q, const NvmeCommand& cmd);
  void OnMemberComplete(uint16_t qid, const TxHandle& tx);

  Simulator* sim_;
  PcieLink* pmr_link_;
  Pmr* pmr_;
  NvmeDriver* nvme_;
  HostCosts costs_;
  uint16_t queue_depth_;
  std::vector<std::unique_ptr<Queue>> queues_;
  uint64_t completed_ = 0;
};

}  // namespace ccnvme

#endif  // SRC_CCNVME_INDIRECT_H_

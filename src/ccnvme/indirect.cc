#include "src/ccnvme/indirect.h"

#include "src/common/logging.h"

namespace ccnvme {

IndirectCcNvme::IndirectCcNvme(Simulator* sim, PcieLink* pmr_link, Pmr* pmr, NvmeDriver* nvme,
                               const HostCosts& costs, uint16_t num_queues,
                               uint16_t queue_depth)
    : sim_(sim),
      pmr_link_(pmr_link),
      pmr_(pmr),
      nvme_(nvme),
      costs_(costs),
      queue_depth_(queue_depth) {
  CCNVME_CHECK_LE(CcNvmeDriver::PmrQueueBase(num_queues, queue_depth), pmr->size());
  for (uint16_t qid = 0; qid < num_queues; ++qid) {
    auto q = std::make_unique<Queue>();
    q->pmr_base = CcNvmeDriver::PmrQueueBase(qid, queue_depth);
    q->wc = std::make_unique<WcBuffer>(pmr_link);
    pmr->WriteU32(q->pmr_base + static_cast<size_t>(queue_depth) * kSqeSize, 0);
    pmr->WriteU32(q->pmr_base + static_cast<size_t>(queue_depth) * kSqeSize + 4, 0);
    queues_.push_back(std::move(q));
  }
}

void IndirectCcNvme::StageToPmr(Queue& q, const NvmeCommand& cmd) {
  uint8_t raw[kSqeSize];
  cmd.Serialize(raw);
  pmr_->Write(q.pmr_base + static_cast<size_t>(q.sq_tail) * kSqeSize,
              std::span<const uint8_t>(raw, kSqeSize));
  q.wc->Store(kSqeSize);
  q.sq_tail = static_cast<uint16_t>((q.sq_tail + 1) % queue_depth_);
}

void IndirectCcNvme::OnMemberComplete(uint16_t qid, const TxHandle& tx) {
  tx->outstanding--;
  Queue& q = *queues_[qid];
  // In-order transaction completion, chained doorbells on the PMR SSD.
  while (!q.inflight.empty()) {
    TxHandle front = q.inflight.front();
    if (!front->committed || front->outstanding != 0) {
      break;
    }
    q.inflight.pop_front();
    q.psq_head = front->end_slot;
    pmr_->WriteU32(q.pmr_base + static_cast<size_t>(queue_depth_) * kSqeSize + 4, q.psq_head);
    pmr_link_->MmioWrite(4);  // persistent P-SQ-head update (PMR SSD)
    front->durable_at_ns = sim_->now();
    completed_++;
    front->durable.Signal();
  }
}

void IndirectCcNvme::SubmitTx(uint16_t qid, uint64_t tx_id, uint64_t slba,
                              const Buffer* data) {
  CCNVME_CHECK_LT(qid, queues_.size());
  Queue& q = *queues_[qid];
  Simulator::Sleep(costs_.ccnvme_stage_ns);
  if (q.open_tx == nullptr) {
    q.open_tx = std::make_shared<Transaction>(sim_);
    q.open_tx->tx_id = tx_id;
  }
  CCNVME_CHECK_EQ(q.open_tx->tx_id, tx_id);

  NvmeCommand cmd;
  cmd.opcode = static_cast<uint8_t>(NvmeOpcode::kWrite);
  cmd.slba = slba;
  cmd.set_num_blocks(static_cast<uint32_t>(data->size() / kLbaSize));
  cmd.cdw12 |= kCdw12ReqTx;
  cmd.tx_id = tx_id;
  StageToPmr(q, cmd);

  // Forwarding to the test SSD is deferred to commit time so the data
  // dissemination matches the ideal design's transaction-aware doorbell.
  q.pending.push_back(PendingForward{slba, data, kCdw12ReqTx});
}

IndirectCcNvme::TxHandle IndirectCcNvme::CommitTx(uint16_t qid, uint64_t tx_id, uint64_t slba,
                                                  const Buffer* data) {
  CCNVME_CHECK_LT(qid, queues_.size());
  Queue& q = *queues_[qid];
  Simulator::Sleep(costs_.ccnvme_stage_ns);
  if (q.open_tx == nullptr) {
    q.open_tx = std::make_shared<Transaction>(sim_);
    q.open_tx->tx_id = tx_id;
  }
  TxHandle tx = q.open_tx;
  CCNVME_CHECK_EQ(tx->tx_id, tx_id);

  NvmeCommand cmd;
  cmd.opcode = static_cast<uint8_t>(NvmeOpcode::kWrite);
  cmd.slba = slba;
  cmd.set_num_blocks(static_cast<uint32_t>(data->size() / kLbaSize));
  cmd.cdw12 |= kCdw12ReqTx | kCdw12ReqTxCommit;
  cmd.tx_id = tx_id;
  StageToPmr(q, cmd);

  // Transaction-aware MMIO + doorbell against the PMR SSD.
  q.wc->FlushPersistent();
  pmr_->WriteU32(q.pmr_base + static_cast<size_t>(queue_depth_) * kSqeSize, q.sq_tail);
  pmr_link_->MmioWrite(4);

  tx->committed = true;
  tx->end_slot = q.sq_tail;
  q.inflight.push_back(tx);
  q.open_tx = nullptr;
  // Atomicity point: the PMR SSD's persistent queue and doorbell hold the
  // whole transaction. Now forward everything to the test SSD through the
  // ordinary block path (its own MMIOs, block I/O and MSI-X — the
  // non-duplicated part of Figure 9(b)).
  tx->atomic_at_ns = sim_->now();
  q.pending.push_back(PendingForward{slba, data, kCdw12ReqTx | kCdw12ReqTxCommit});
  std::vector<PendingForward> forwards;
  forwards.swap(q.pending);
  tx->outstanding += static_cast<int>(forwards.size());
  for (const PendingForward& f : forwards) {
    (void)nvme_->SubmitWrite(qid, f.slba, f.data, /*fua=*/false, f.tx_flags, tx_id,
                             [this, qid, tx] { OnMemberComplete(qid, tx); });
  }
  return tx;
}

}  // namespace ccnvme

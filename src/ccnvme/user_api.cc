#include "src/ccnvme/user_api.h"

#include "src/common/logging.h"

namespace ccnvme {

Result<uint64_t> CcNvmeUserApi::BeginTx() {
  if (record_ != nullptr) {
    return Busy("a transaction is already open on this handle");
  }
  record_ = std::make_shared<TxRecord>();
  record_->tx_id = next_tx_id_++;
  return record_->tx_id;
}

Status CcNvmeUserApi::StageWrite(uint64_t lba, std::span<const uint8_t> data) {
  if (record_ == nullptr) {
    return InvalidArgument("no open transaction (call BeginTx)");
  }
  if (data.empty() || data.size() % kLbaSize != 0) {
    return InvalidArgument("write must be a non-empty multiple of 4 KB");
  }
  auto w = std::make_unique<StagedWrite>();
  w->lba = lba;
  w->data.assign(data.begin(), data.end());
  record_->writes.push_back(std::move(w));
  return OkStatus();
}

Result<CcNvmeDriver::TxHandle> CcNvmeUserApi::Submit() {
  if (record_ == nullptr) {
    return InvalidArgument("no open transaction");
  }
  if (record_->writes.empty()) {
    record_ = nullptr;
    return InvalidArgument("empty transaction");
  }
  std::shared_ptr<TxRecord> rec = std::move(record_);
  // All but the last request are REQ_TX members; the last is the commit.
  for (size_t i = 0; i + 1 < rec->writes.size(); ++i) {
    cc_->SubmitTx(qid_, rec->tx_id, rec->writes[i]->lba, &rec->writes[i]->data);
  }
  const StagedWrite& last = *rec->writes.back();
  // The record (and so every staged buffer) stays alive until durability.
  auto handle = cc_->CommitTx(qid_, rec->tx_id, last.lba, &last.data, [rec] {});
  committed_++;
  return handle;
}

Status CcNvmeUserApi::CommitDurable() {
  CCNVME_ASSIGN_OR_RETURN(CcNvmeDriver::TxHandle handle, Submit());
  cc_->WaitDurable(handle);
  return OkStatus();
}

Result<CcNvmeDriver::TxHandle> CcNvmeUserApi::CommitAtomic() { return Submit(); }

void CcNvmeUserApi::Abort() { record_ = nullptr; }

Status CcNvmeUserApi::Read(uint64_t lba, uint32_t num_blocks, Buffer* out) {
  return nvme_->Read(qid_, lba, num_blocks, out);
}

}  // namespace ccnvme

// Raw application interface to ccNVMe (§4.5).
//
// "The application can use the original nvme command or the ioctl system
// call to submit raw ccNVMe commands" — this is that surface: a userspace
// handle that stages multi-block writes into one failure-atomic transaction
// on raw LBAs, with the two commit flavours the paper defines:
//
//   CommitDurable()  — returns when the transaction is durably complete
//   CommitAtomic()   — returns at the atomicity point (the persistent
//                      doorbell, two MMIOs); the handle owns the staged
//                      buffers until the background pipeline drains
//
// One transaction may be open per handle at a time (a handle maps to one
// hardware queue, per the no-migration rule of §4.5).
#ifndef SRC_CCNVME_USER_API_H_
#define SRC_CCNVME_USER_API_H_

#include <memory>
#include <vector>

#include "src/ccnvme/ccnvme_driver.h"
#include "src/driver/nvme_driver.h"

namespace ccnvme {

class CcNvmeUserApi {
 public:
  // |nvme| is used for raw reads (reads need no transaction machinery).
  CcNvmeUserApi(Simulator* sim, CcNvmeDriver* cc, NvmeDriver* nvme, uint16_t qid)
      : sim_(sim), cc_(cc), nvme_(nvme), qid_(qid) {}

  // Opens a transaction; returns its id. Fails if one is already open.
  Result<uint64_t> BeginTx();

  // Stages a write of |data| (multiple of 4 KB) at |lba| into the open
  // transaction. The data is copied; the caller's buffer is free after the
  // call. Order within the transaction is preserved.
  Status StageWrite(uint64_t lba, std::span<const uint8_t> data);

  // Commits and waits for durable completion.
  Status CommitDurable();
  // Commits and returns at the atomicity point. The returned handle can be
  // waited on (or dropped — the staged buffers live until the transaction
  // completes regardless).
  Result<CcNvmeDriver::TxHandle> CommitAtomic();
  // Drops the open transaction without submitting anything ("nothing").
  void Abort();

  // Raw 4 KB-block read.
  Status Read(uint64_t lba, uint32_t num_blocks, Buffer* out);

  bool tx_open() const { return record_ != nullptr; }
  uint64_t transactions_committed() const { return committed_; }

 private:
  struct StagedWrite {
    uint64_t lba;
    Buffer data;
  };
  struct TxRecord {
    uint64_t tx_id = 0;
    std::vector<std::unique_ptr<StagedWrite>> writes;
  };

  Result<CcNvmeDriver::TxHandle> Submit();

  Simulator* sim_;
  CcNvmeDriver* cc_;
  NvmeDriver* nvme_;
  uint16_t qid_;
  uint64_t next_tx_id_ = 1;
  std::shared_ptr<TxRecord> record_;
  uint64_t committed_ = 0;
};

}  // namespace ccnvme

#endif  // SRC_CCNVME_USER_API_H_

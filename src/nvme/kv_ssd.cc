#include "src/nvme/kv_ssd.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/metrics/metrics.h"
#include "src/trace/tracer.h"

namespace ccnvme {

namespace {
constexpr uint64_t kPageBytes = 4096;
}  // namespace

KvPmrLayout KvPmrLayout::From(uint32_t dir_slots, uint32_t shadow_slots,
                              uint64_t total_lpns, uint32_t map_entries_per_segment,
                              size_t pmr_size) {
  KvPmrLayout l;
  l.num_segments = static_cast<uint32_t>(
      (total_lpns + map_entries_per_segment - 1) / map_entries_per_segment);
  l.sb_off = pmr_size - kKvSuperblockBytes;
  l.gtd_off = l.sb_off - static_cast<size_t>(l.num_segments) * 8;
  l.shadow_off = l.gtd_off - static_cast<size_t>(shadow_slots) * kKvShadowBytes;
  l.dir_off = l.shadow_off - static_cast<size_t>(dir_slots) * kKvDirSlotBytes;
  return l;
}

KvSsd::KvSsd(Simulator* sim, SsdModel* ssd, Pmr* pmr, const KvSsdConfig& config)
    : sim_(sim), ssd_(ssd), pmr_(pmr), config_(config), mu_(sim) {
  CCNVME_CHECK(config_.dir_slots > 0 && config_.shadow_slots > 1);
  CCNVME_CHECK(config_.total_lpns <= (1ull << 26)) << "meta word packs 26 LPN bits";
  CCNVME_CHECK(config_.max_value_bytes < (1u << 20)) << "meta word packs 20 length bits";
  CCNVME_CHECK(config_.max_value_bytes <= config_.pages_per_block * kPageBytes)
      << "a value must fit one erase block (contiguous run)";
  layout_ = KvPmrLayout::From(config_.dir_slots, config_.shadow_slots,
                              config_.total_lpns, config_.map_entries_per_segment,
                              pmr_->size());
  // The ccNVMe P-SQ area grows from the bottom of the PMR; keep clear of it.
  CCNVME_CHECK(layout_.dir_off >= 64 * 1024)
      << "KV metadata would overrun the PMR (shrink dir_slots or the geometry)";
  dir_.resize(config_.dir_slots);
}

KvSsd::~KvSsd() = default;

// --- meta word -------------------------------------------------------------

uint64_t KvSsd::PackMeta(uint64_t lpn, uint32_t value_len, uint32_t key_len) {
  return kMetaUsed | (lpn & 0x3FFFFFF) | (static_cast<uint64_t>(value_len & 0xFFFFF) << 26) |
         (static_cast<uint64_t>(key_len & 0x1F) << 46);
}

// --- recorded PMR traffic --------------------------------------------------

void KvSsd::PmrStoreWc(size_t offset, std::span<const uint8_t> data) {
  pmr_->Write(offset, data);
  Simulator::Sleep(config_.pmr_store_ns);
  if (recorder_) {
    BioEvent ev;
    ev.op = BioOp::kPmrWrite;
    ev.lba = offset;
    ev.flags = kBioPmrWc;
    ev.qid = kFtlQid;
    ev.device = device_id_;
    ev.data.assign(data.begin(), data.end());
    recorder_(ev);
  }
}

void KvSsd::PmrStoreUncached(size_t offset, std::span<const uint8_t> data) {
  pmr_->Write(offset, data);
  Simulator::Sleep(config_.pmr_store_ns);
  if (recorder_) {
    BioEvent ev;
    ev.op = BioOp::kPmrWrite;
    ev.lba = offset;
    ev.qid = kFtlQid;
    ev.device = device_id_;
    ev.data.assign(data.begin(), data.end());
    recorder_(ev);
  }
}

void KvSsd::PmrFence() {
  Simulator::Sleep(config_.pmr_fence_ns);
  if (recorder_) {
    BioEvent ev;
    ev.op = BioOp::kPmrFence;
    ev.qid = kFtlQid;
    ev.device = device_id_;
    recorder_(ev);
  }
}

// --- FtlEnv ----------------------------------------------------------------

void KvSsd::PersistGtd(uint32_t seg, uint64_t ppn) {
  Buffer word(8);
  PutU64(word, 0, ppn);
  PmrStoreUncached(layout_.gtd_off + static_cast<size_t>(seg) * 8, word);
}

uint64_t KvSsd::LoadGtd(uint32_t seg) {
  Buffer word(8);
  pmr_->Read(layout_.gtd_off + static_cast<size_t>(seg) * 8, word);
  return GetU64(word, 0);
}

bool KvSsd::FlashWrite(uint64_t ppn, const Buffer& data) {
  CCNVME_CHECK(data.size() == kPageBytes);
  // A volatile-cache drive would leave completed pages in its cache; force
  // unit access there so every completed KV page program is durable (the
  // commit protocol depends on it). PLP drives take the normal path.
  const bool fua = ssd_->config().volatile_cache && !ssd_->config().power_loss_protection;
  const uint64_t seq = media_seq_++;
  if (recorder_) {
    BioEvent ev;
    ev.op = BioOp::kWrite;
    ev.seq = seq;
    ev.lba = ppn;
    ev.flags = fua ? kBioFua : 0;
    ev.device = device_id_;
    ev.data = data;
    recorder_(ev);
  }
  const bool ok = ssd_->MediaWrite(ppn * kPageBytes, data, fua);
  if (recorder_) {
    BioEvent ev;
    ev.op = BioOp::kComplete;
    ev.seq = seq;
    ev.lba = ppn;
    ev.device = device_id_;
    recorder_(ev);
  }
  return ok;
}

bool KvSsd::FlashRead(uint64_t ppn, Buffer* out) {
  out->assign(kPageBytes, 0);
  return ssd_->MediaRead(ppn * kPageBytes, *out);
}

void KvSsd::EraseWait() { Simulator::Sleep(config_.erase_latency_ns); }

void KvSsd::OnMapCheckpointed() {
  // Every dirty segment + its GTD root is durable: shadows at or below
  // last_seq_ are now redundant. Advance the checkpoint with one uncached
  // 8-byte store (atomic, durable immediately).
  checkpoint_seq_ = last_seq_;
  Buffer word(8);
  PutU64(word, 0, checkpoint_seq_);
  PmrStoreUncached(layout_.sb_off + 8, word);
  // Stats mirror for offline tools; not correctness-critical.
  Buffer stats(32);
  PutU64(stats, 0, ftl_ == nullptr ? 0 : ftl_->host_pages_written());
  PutU64(stats, 8, ftl_ == nullptr ? 0 : ftl_->media_pages_written());
  PutU64(stats, 16, ftl_ == nullptr ? 0 : ftl_->gc_runs());
  PutU64(stats, 24, ftl_ == nullptr ? 0 : ftl_->gc_migrated_pages());
  pmr_->Write(layout_.sb_off + 24, stats);
}

// --- format / attach -------------------------------------------------------

uint64_t KvSsd::GeometryHash() const {
  Buffer geo(48);
  PutU64(geo, 0, config_.dir_slots);
  PutU64(geo, 8, config_.shadow_slots);
  PutU64(geo, 16, config_.flash_pages);
  PutU64(geo, 24, config_.total_lpns);
  PutU64(geo, 32, config_.pages_per_block);
  PutU64(geo, 40, config_.map_entries_per_segment);
  return Fnv1a(geo);
}

void KvSsd::WriteSuperblock() {
  Buffer sb(kKvSuperblockBytes, 0);
  PutU32(sb, 0, kKvSsdMagic);
  PutU32(sb, 4, kKvSsdVersion);
  PutU64(sb, 8, checkpoint_seq_);
  PutU64(sb, 16, GeometryHash());
  // 24..56: stats (host/media/gc_runs/gc_migrated), zero at format.
  PutU32(sb, 56, config_.dir_slots);
  PutU32(sb, 60, config_.shadow_slots);
  PutU64(sb, 64, config_.flash_pages);
  PutU64(sb, 72, config_.total_lpns);
  PutU32(sb, 80, config_.pages_per_block);
  PutU32(sb, 84, config_.map_entries_per_segment);
  PutU32(sb, 88, config_.map_cache_segments);
  PutU32(sb, 92, config_.gc_free_blocks_low);
  pmr_->Write(layout_.sb_off, sb);
}

Status KvSsd::Format() {
  SimLockGuard lock(mu_);
  // Direct (unrecorded) PMR initialization, the mkfs analogue: zero the
  // directory + shadow ring, set every GTD root to "none".
  Buffer zeros(static_cast<size_t>(config_.dir_slots) * kKvDirSlotBytes +
                   static_cast<size_t>(config_.shadow_slots) * kKvShadowBytes,
               0);
  pmr_->Write(layout_.dir_off, zeros);
  Buffer none(static_cast<size_t>(layout_.num_segments) * 8, 0xFF);
  pmr_->Write(layout_.gtd_off, none);
  checkpoint_seq_ = 0;
  last_seq_ = 0;
  live_keys_ = 0;
  WriteSuperblock();
  dir_.assign(config_.dir_slots, DirEnt{});
  attach_errors_.clear();
  ftl_ = std::make_unique<Ftl>(sim_, this, config_.ToFtlConfig());
  attached_ = true;
  return OkStatus();
}

Status KvSsd::Attach() {
  SimLockGuard lock(mu_);
  ScopedSpan span(sim_->tracer(), TracePoint::kFtlRecover);
  Buffer sb(kKvSuperblockBytes);
  pmr_->Read(layout_.sb_off, sb);
  if (GetU32(sb, 0) != kKvSsdMagic || GetU32(sb, 4) != kKvSsdVersion) {
    return IoError("kv-ssd: no superblock (device not formatted?)");
  }
  if (GetU64(sb, 16) != GeometryHash()) {
    return IoError("kv-ssd: superblock geometry does not match the config");
  }
  checkpoint_seq_ = GetU64(sb, 8);
  last_seq_ = checkpoint_seq_;
  attach_errors_.clear();
  live_keys_ = 0;
  ftl_ = std::make_unique<Ftl>(sim_, this, config_.ToFtlConfig());
  ftl_->BeginAttach();
  ftl_->AttachLoadGtd();

  // Shadow replay: crc-clean entries with consecutive sequence numbers
  // starting right above the checkpoint. A gap means the later entries
  // never armed before the crash; their commits cannot have happened
  // either (the commit fence orders arm before commit), so stop there.
  std::vector<Shadow> cands;
  for (uint32_t s = 0; s < config_.shadow_slots; ++s) {
    Buffer rec(kKvShadowBytes);
    pmr_->Read(layout_.shadow_off + static_cast<size_t>(s) * kKvShadowBytes, rec);
    const uint64_t seq = GetU64(rec, 0);
    if (seq <= checkpoint_seq_ || seq > checkpoint_seq_ + config_.shadow_slots) {
      continue;
    }
    if (GetU32(rec, 28) != ShadowCrc(std::span<const uint8_t>(rec.data(), 28))) {
      continue;
    }
    Shadow sh;
    sh.seq = seq;
    sh.lpn = GetU64(rec, 8);
    sh.npages = GetU32(rec, 16);
    sh.ppn = GetU32(rec, 20);
    sh.slot = GetU32(rec, 24);
    cands.push_back(sh);
  }
  std::sort(cands.begin(), cands.end(),
            [](const Shadow& a, const Shadow& b) { return a.seq < b.seq; });
  for (const Shadow& sh : cands) {
    if (sh.seq != last_seq_ + 1) {
      break;
    }
    for (uint32_t i = 0; i < sh.npages; ++i) {
      ftl_->MapSetForReplay(sh.lpn + i, sh.ppn + i);
    }
    last_seq_ = sh.seq;
  }

  // Directory walk: mirror the slots into RAM and rebuild physical-page
  // liveness. Every LPN a live entry covers must be mapped — an unmapped
  // one means the commit word landed without its shadow (the injected-bug
  // signature) or the image is corrupt.
  dir_.assign(config_.dir_slots, DirEnt{});
  std::vector<uint8_t> claimed(config_.total_lpns, 0);
  for (uint32_t s = 0; s < config_.dir_slots; ++s) {
    Buffer raw(kKvDirSlotBytes);
    pmr_->Read(layout_.dir_off + static_cast<size_t>(s) * kKvDirSlotBytes, raw);
    DirEnt& e = dir_[s];
    std::copy(raw.begin(), raw.begin() + kKvMaxKeyLen, e.key.begin());
    e.meta = GetU64(raw, 24);
    if (!MetaLive(e.meta)) {
      continue;
    }
    live_keys_++;
    const uint32_t key_len = MetaKeyLen(e.meta);
    const uint64_t lpn = MetaLpn(e.meta);
    const uint32_t npages = MetaPages(e.meta);
    if (key_len < 1 || key_len > kKvMaxKeyLen ||
        MetaValueLen(e.meta) > config_.max_value_bytes ||
        lpn + npages > config_.total_lpns) {
      attach_errors_.push_back("kv-ssd: directory slot " + std::to_string(s) +
                               " has out-of-range fields");
      continue;
    }
    for (uint32_t i = 0; i < npages; ++i) {
      claimed[lpn + i] = 1;
      const uint64_t ppn = ftl_->MapLookup(lpn + i);
      if (ppn == kFtlUnmapped || ppn >= config_.flash_pages) {
        attach_errors_.push_back(
            "kv-ssd: directory entry in slot " + std::to_string(s) +
            " covers unmapped lpn " + std::to_string(lpn + i) +
            " (committed meta word without a durable shadow map-entry)");
        continue;
      }
      if (!ftl_->MarkLive(lpn + i, ppn)) {
        attach_errors_.push_back("kv-ssd: physical page " + std::to_string(ppn) +
                                 " claimed by two live mappings");
      }
    }
  }

  // Orphan sweep: drop mappings no live entry claims — the residue of
  // stores whose commit word never landed (a replayed shadow of an aborted
  // store, or staged entries that rode a mid-store map checkpoint). Their
  // data pages stay unclaimed and fall back to the free/stale pools below.
  for (uint64_t lpn = 0; lpn < config_.total_lpns; ++lpn) {
    if (claimed[lpn] == 0) {
      ftl_->MapClearUnclaimed(lpn);
    }
  }
  ftl_->FinishAttach();
  attached_ = true;
  PublishFtlMetrics();
  return OkStatus();
}

Status KvSsd::CheckConsistency() {
  SimLockGuard lock(mu_);
  if (!attached_) {
    return IoError("kv-ssd: not attached");
  }
  if (!attach_errors_.empty()) {
    return IoError(attach_errors_.front() +
                           (attach_errors_.size() > 1
                                ? " (+" + std::to_string(attach_errors_.size() - 1) +
                                      " more)"
                                : ""));
  }
  return OkStatus();
}

uint32_t KvSsd::ShadowCrc(std::span<const uint8_t> rec28) {
  return static_cast<uint32_t>(Fnv1a(rec28) & 0xFFFFFFFF);
}

void KvSsd::PublishFtlMetrics() {
  Metrics* m = sim_->metrics();
  if (m == nullptr || ftl_ == nullptr) {
    return;
  }
  if (metrics_seen_ != m) {
    metrics_seen_ = m;
    MetricsRegistry& r = m->registry();
    gauge_handles_[0] = r.Gauge("ftl.waf");  // fixed-point x1000 (gauges are integral)
    gauge_handles_[1] = r.Gauge("ftl.host_pages");
    gauge_handles_[2] = r.Gauge("ftl.media_pages");
    gauge_handles_[3] = r.Gauge("ftl.gc_runs");
    gauge_handles_[4] = r.Gauge("ftl.gc_migrated_pages");
    gauge_handles_[5] = r.Gauge("ftl.map_loads");
    gauge_handles_[6] = r.Gauge("ftl.free_blocks");
    gauge_handles_[7] = r.Gauge("kv.live_keys");
  }
  MetricsRegistry& r = m->registry();
  r.GaugeSet(gauge_handles_[0], static_cast<int64_t>(ftl_->waf() * 1000.0));
  r.GaugeSet(gauge_handles_[1], static_cast<int64_t>(ftl_->host_pages_written()));
  r.GaugeSet(gauge_handles_[2], static_cast<int64_t>(ftl_->media_pages_written()));
  r.GaugeSet(gauge_handles_[3], static_cast<int64_t>(ftl_->gc_runs()));
  r.GaugeSet(gauge_handles_[4], static_cast<int64_t>(ftl_->gc_migrated_pages()));
  r.GaugeSet(gauge_handles_[5], static_cast<int64_t>(ftl_->map_loads()));
  r.GaugeSet(gauge_handles_[6], static_cast<int64_t>(ftl_->free_blocks()));
  r.GaugeSet(gauge_handles_[7], static_cast<int64_t>(live_keys_));
}

// --- directory probing -----------------------------------------------------

bool KvSsd::KeyMatches(const DirEnt& e, std::span<const uint8_t> key) const {
  if (MetaKeyLen(e.meta) != key.size()) {
    return false;
  }
  return std::equal(key.begin(), key.end(), e.key.begin());
}

void KvSsd::Probe(std::span<const uint8_t> key, int* found, int* insert) const {
  *found = -1;
  *insert = -1;
  const uint32_t h = static_cast<uint32_t>(Fnv1a(key) % config_.dir_slots);
  for (uint32_t i = 0; i < config_.dir_slots; ++i) {
    const uint32_t s = (h + i) % config_.dir_slots;
    const DirEnt& e = dir_[s];
    if (e.meta == 0) {
      if (*insert < 0) {
        *insert = static_cast<int>(s);
      }
      return;  // empty slot terminates the probe chain
    }
    if ((e.meta & kMetaTomb) != 0) {
      if (*insert < 0) {
        *insert = static_cast<int>(s);
      }
      continue;
    }
    if (KeyMatches(e, key)) {
      *found = static_cast<int>(s);
      return;
    }
  }
}

void KvSsd::ReleaseValue(uint64_t meta) {
  const uint64_t lpn = MetaLpn(meta);
  const uint32_t npages = MetaPages(meta);
  for (uint32_t i = 0; i < npages; ++i) {
    ftl_->MapErase(lpn + i);
    ftl_->FreeLpn(lpn + i);
  }
}

// --- KV commands -----------------------------------------------------------

uint16_t KvSsd::ExecStore(std::span<const uint8_t> key, std::span<const uint8_t> value) {
  SimLockGuard lock(mu_);
  CCNVME_CHECK(attached_) << "KV command before Format/Attach";
  if (key.empty() || key.size() > kKvMaxKeyLen ||
      value.size() > config_.max_value_bytes) {
    return kKvStatusInvalidField;
  }
  int found = -1;
  int insert = -1;
  Probe(key, &found, &insert);
  const int slot = found >= 0 ? found : insert;
  if (slot < 0) {
    return kKvStatusCapacity;  // directory full
  }
  const uint64_t old_meta = found >= 0 ? dir_[slot].meta : 0;

  // 1. Data pages, out-of-place into the open erase block (GC may run
  // inside AllocRun and is blamed on this command via wait.ftl_gc).
  const uint32_t npages = static_cast<uint32_t>((value.size() + kPageBytes - 1) / kPageBytes);
  uint64_t lpn = 0;
  uint64_t ppn = 0;
  if (npages > 0) {
    lpn = ftl_->AllocLpnRun(npages);
    if (lpn == kFtlUnmapped) {
      return kKvStatusCapacity;
    }
    ppn = ftl_->AllocRun(npages);
    if (ppn == kFtlUnmapped) {
      for (uint32_t i = 0; i < npages; ++i) {
        ftl_->FreeLpn(lpn + i);
      }
      return kKvStatusCapacity;
    }
    for (uint32_t i = 0; i < npages; ++i) {
      Buffer page(kPageBytes, 0);
      const size_t begin = static_cast<size_t>(i) * kPageBytes;
      const size_t len = std::min(kPageBytes, value.size() - begin);
      std::copy(value.begin() + begin, value.begin() + begin + len, page.begin());
      if (!FlashWrite(ppn + i, page)) {
        ftl_->DiscardRun(ppn, npages);
        for (uint32_t j = 0; j < npages; ++j) {
          ftl_->FreeLpn(lpn + j);
        }
        return kKvStatusMediaError;
      }
      ftl_->CountHostPage();
    }
    // 2. Stage the L2P updates (volatile until checkpoint or replay).
    for (uint32_t i = 0; i < npages; ++i) {
      ftl_->MapInstall(lpn + i, ppn + i);
    }
  }

  // Ring-wrap guard: the shadow for seq would overwrite a not-yet-dead
  // entry; checkpoint the map first so every older shadow is redundant.
  const uint64_t seq = last_seq_ + 1;
  if (seq - checkpoint_seq_ > config_.shadow_slots) {
    ftl_->CheckpointMap();
  }
  last_seq_ = seq;

  // 3. ARM: key bytes (first insert into this slot) + shadow, then fence.
  std::array<uint8_t, kKvMaxKeyLen> padded{};
  std::copy(key.begin(), key.end(), padded.begin());
  const bool need_key_write = found < 0 || dir_[slot].key != padded;
  bool shadow_armed = false;
  if (!config_.test_skip_ftl_shadow_commit) {
    if (need_key_write) {
      PmrStoreWc(layout_.dir_off + static_cast<size_t>(slot) * kKvDirSlotBytes, padded);
    }
    Buffer rec(kKvShadowBytes, 0);
    PutU64(rec, 0, seq);
    PutU64(rec, 8, lpn);
    PutU32(rec, 16, npages);
    PutU32(rec, 20, static_cast<uint32_t>(ppn));
    PutU32(rec, 24, static_cast<uint32_t>(slot));
    PutU32(rec, 28, ShadowCrc(std::span<const uint8_t>(rec.data(), 28)));
    PmrStoreWc(layout_.shadow_off +
                   static_cast<size_t>(seq % config_.shadow_slots) * kKvShadowBytes,
               rec);
    PmrFence();  // ARM: shadow + key bytes durable from here on
    shadow_armed = true;
  } else if (need_key_write) {
    // Injected bug: the key bytes still go in (they ride the commit
    // fence), but the shadow map-entry and its fence are skipped.
    PmrStoreWc(layout_.dir_off + static_cast<size_t>(slot) * kKvDirSlotBytes, padded);
  }

  // 4. COMMIT: the single 8-byte meta word is the atomicity point.
  const uint64_t meta = PackMeta(lpn, static_cast<uint32_t>(value.size()),
                                 static_cast<uint32_t>(key.size()));
  Buffer word(8);
  PutU64(word, 0, meta);
  PmrStoreWc(layout_.dir_off + static_cast<size_t>(slot) * kKvDirSlotBytes + 24, word);
  if (Metrics* m = sim_->metrics()) {
    m->monitors().OnKvCommit(Fnv1a(key), /*data_durable=*/true, shadow_armed);
  }
  PmrFence();  // COMMIT

  if (found < 0) {
    live_keys_++;
  }
  dir_[slot].key = padded;
  dir_[slot].meta = meta;
  if (MetaLive(old_meta)) {
    ReleaseValue(old_meta);  // the overwritten value's LPNs are dead now
  }
  stores_++;
  PublishFtlMetrics();
  return 0;
}

uint16_t KvSsd::ExecRetrieve(std::span<const uint8_t> key, Buffer* out,
                             uint32_t* result) {
  SimLockGuard lock(mu_);
  CCNVME_CHECK(attached_) << "KV command before Format/Attach";
  if (key.empty() || key.size() > kKvMaxKeyLen) {
    return kKvStatusInvalidField;
  }
  int found = -1;
  int insert = -1;
  Probe(key, &found, &insert);
  if (found < 0) {
    return kKvStatusNotFound;
  }
  const uint64_t meta = dir_[found].meta;
  const uint32_t value_len = MetaValueLen(meta);
  const uint64_t lpn = MetaLpn(meta);
  const uint32_t npages = MetaPages(meta);
  out->assign(value_len, 0);
  for (uint32_t i = 0; i < npages; ++i) {
    const uint64_t ppn = ftl_->MapLookup(lpn + i);
    if (ppn == kFtlUnmapped) {
      return kKvStatusInternal;  // live entry with no mapping: corrupt state
    }
    Buffer page;
    if (!FlashRead(ppn, &page)) {
      return kKvStatusMediaError;
    }
    const size_t begin = static_cast<size_t>(i) * kPageBytes;
    const size_t len = std::min(kPageBytes, static_cast<uint64_t>(value_len) - begin);
    std::copy(page.begin(), page.begin() + len, out->begin() + begin);
  }
  *result = value_len;
  retrieves_++;
  return 0;
}

uint16_t KvSsd::ExecDelete(std::span<const uint8_t> key) {
  SimLockGuard lock(mu_);
  CCNVME_CHECK(attached_) << "KV command before Format/Attach";
  if (key.empty() || key.size() > kKvMaxKeyLen) {
    return kKvStatusInvalidField;
  }
  int found = -1;
  int insert = -1;
  Probe(key, &found, &insert);
  if (found < 0) {
    return kKvStatusNotFound;
  }
  const uint64_t old_meta = dir_[found].meta;
  // One fenced 8-byte tombstone store: deletes are atomic the same way
  // stores are, and need no shadow (recovery never maps a tombstone).
  Buffer word(8);
  PutU64(word, 0, kMetaTomb);
  PmrStoreWc(layout_.dir_off + static_cast<size_t>(found) * kKvDirSlotBytes + 24, word);
  PmrFence();
  dir_[found].meta = kMetaTomb;
  live_keys_--;
  ReleaseValue(old_meta);
  deletes_++;
  PublishFtlMetrics();
  return 0;
}

uint16_t KvSsd::ExecExist(std::span<const uint8_t> key) {
  SimLockGuard lock(mu_);
  CCNVME_CHECK(attached_) << "KV command before Format/Attach";
  if (key.empty() || key.size() > kKvMaxKeyLen) {
    return kKvStatusInvalidField;
  }
  int found = -1;
  int insert = -1;
  Probe(key, &found, &insert);
  return found >= 0 ? 0 : kKvStatusNotFound;
}

uint16_t KvSsd::ExecList(uint32_t start_slot, uint32_t max_keys, Buffer* out,
                         uint32_t* result) {
  SimLockGuard lock(mu_);
  CCNVME_CHECK(attached_) << "KV command before Format/Attach";
  Buffer body;
  uint32_t count = 0;
  uint32_t s = start_slot;
  for (; s < config_.dir_slots && count < max_keys; ++s) {
    const DirEnt& e = dir_[s];
    if (!MetaLive(e.meta)) {
      continue;
    }
    const uint32_t key_len = MetaKeyLen(e.meta);
    body.push_back(static_cast<uint8_t>(key_len));
    body.insert(body.end(), e.key.begin(), e.key.begin() + key_len);
    count++;
  }
  const uint32_t next = s >= config_.dir_slots ? 0xFFFFFFFFu : s;
  out->assign(8 + body.size(), 0);
  PutU32(*out, 0, next);
  PutU32(*out, 4, count);
  std::copy(body.begin(), body.end(), out->begin() + 8);
  *result = count;
  return 0;
}

}  // namespace ccnvme

#include "src/nvme/controller.h"

#include "src/common/logging.h"
#include "src/metrics/metrics.h"
#include "src/nvme/admin.h"
#include "src/nvme/kv_ssd.h"
#include "src/trace/tracer.h"

namespace ccnvme {

NvmeController::NvmeController(Simulator* sim, PcieLink* link, SsdModel* ssd,
                               const NvmeControllerConfig& config)
    : sim_(sim), link_(link), ssd_(ssd), config_(config), pmr_(config.pmr_size) {}

IoQueuePair* NvmeController::CreateIoQueuePair(uint16_t qid, bool sq_in_pmr,
                                               size_t pmr_sq_offset,
                                               std::function<void()> irq_handler) {
  return CreateIoQueuePairWithDepth(qid, config_.queue_depth, sq_in_pmr, pmr_sq_offset,
                                    std::move(irq_handler));
}

IoQueuePair* NvmeController::CreateIoQueuePairWithDepth(uint16_t qid, uint16_t depth,
                                                        bool sq_in_pmr, size_t pmr_sq_offset,
                                                        std::function<void()> irq_handler) {
  auto qp = std::make_unique<IoQueuePair>();
  qp->qid = qid;
  qp->depth = depth;
  qp->sq_in_pmr = sq_in_pmr;
  qp->pmr_sq_offset = pmr_sq_offset;
  if (!sq_in_pmr) {
    qp->host_sq.resize(static_cast<size_t>(qp->depth) * kSqeSize);
  } else {
    CCNVME_CHECK_LE(pmr_sq_offset + static_cast<size_t>(qp->depth) * kSqeSize, pmr_.size())
        << "P-SQ does not fit in the PMR";
  }
  qp->host_cq.resize(static_cast<size_t>(qp->depth) * kCqeSize);
  qp->data.resize(qp->depth);
  qp->irq_handler = std::move(irq_handler);
  qp->mu = std::make_unique<SimMutex>(sim_);
  qp->doorbell_cv = std::make_unique<SimCondVar>(sim_);
  qp->claims_cv = std::make_unique<SimCondVar>(sim_);

  IoQueuePair* raw = qp.get();
  queues_.push_back(std::move(qp));
  for (int w = 0; w < config_.workers_per_queue; ++w) {
    sim_->Spawn("nvme_q" + std::to_string(qid) + "_w" + std::to_string(w),
                [this, raw] { WorkerLoop(raw); });
  }
  return raw;
}

IoQueuePair* NvmeController::CreateAdminQueue(std::function<void()> irq_handler) {
  RegisterIrqVector(0, irq_handler);
  IoQueuePair* qp = CreateIoQueuePair(/*qid=*/0, /*sq_in_pmr=*/false, 0,
                                      std::move(irq_handler));
  qp->is_admin = true;
  return qp;
}

void NvmeController::RegisterIrqVector(uint16_t vector, std::function<void()> handler) {
  irq_vectors_[vector] = std::move(handler);
}

IoQueuePair* NvmeController::FindQueue(uint16_t qid) {
  if (deleted_queues_.count(qid) != 0) {
    return nullptr;
  }
  for (auto& qp : queues_) {
    if (qp->qid == qid && !qp->is_admin) {
      return qp.get();
    }
  }
  return nullptr;
}

void NvmeController::RingSqDoorbell(IoQueuePair* qp, uint16_t new_tail) {
  CCNVME_CHECK_LT(new_tail, qp->depth);
  qp->sq_tail_db = new_tail;
  qp->doorbell_cv->NotifyAll();
}

void NvmeController::RingCqDoorbell(IoQueuePair* qp, uint16_t new_head) {
  CCNVME_CHECK_LT(new_head, qp->depth);
  qp->cq_head_db = new_head;
}

void NvmeController::ReadSqe(IoQueuePair* qp, uint16_t slot, std::span<uint8_t> out) {
  const size_t off = static_cast<size_t>(slot) * kSqeSize;
  if (qp->sq_in_pmr) {
    pmr_.Read(qp->pmr_sq_offset + off, out);
  } else {
    std::memcpy(out.data(), qp->host_sq.data() + off, kSqeSize);
  }
}

void NvmeController::WorkerLoop(IoQueuePair* qp) {
  for (;;) {
    uint16_t slot;
    uint64_t claim;
    {
      SimLockGuard guard(*qp->mu);
      while (qp->sq_fetch_head == qp->sq_tail_db) {
        qp->doorbell_cv->Wait(*qp->mu);
      }
      slot = qp->sq_fetch_head;
      qp->sq_fetch_head = qp->SlotAfter(slot);
      claim = qp->next_claim_seq++;
      qp->active_claims.insert(claim);
    }

    // Fetch the SQE: device-internal for P-SQ, a PCIe queue DMA otherwise.
    Tracer* tracer = sim_->tracer();
    if (tracer != nullptr) tracer->BeginSpan(TracePoint::kSqeFetch);
    if (qp->sq_in_pmr) {
      Simulator::Sleep(config_.pmr_fetch_ns);
    } else {
      link_->DmaQueueFetch(kSqeSize);
    }
    uint8_t raw[kSqeSize];
    ReadSqe(qp, slot, raw);
    const NvmeCommand cmd = NvmeCommand::Parse(raw);
    if (tracer != nullptr) tracer->EndSpan(TracePoint::kSqeFetch);
    // The SQE carries the request/transaction ids across the PCIe boundary;
    // restore them so the device-side spans join the host-side flow.
    ScopedTraceContext trace_ctx({cmd.trace_req, cmd.tx_id});

    if (qp->is_admin) {
      ExecuteAdmin(qp, cmd);
      SimLockGuard guard(*qp->mu);
      qp->active_claims.erase(qp->active_claims.find(claim));
      qp->claims_cv->NotifyAll();
      continue;
    }

    if (config_.tx_aware_irq_coalescing && cmd.is_tx()) {
      IoQueuePair::TxIrqState& st = qp->tx_irq[cmd.tx_id];
      st.inflight++;
      if (cmd.is_tx_commit()) {
        st.commit_seen = true;
      }
    }

    if (cmd.op() == NvmeOpcode::kFlush) {
      // FLUSH acts as a drain barrier: it executes only after every command
      // fetched before it has finished, so it covers exactly the writes the
      // host intended it to cover (JBD2's PREFLUSH and ccNVMe's implicit
      // commit flush both rely on this).
      SimLockGuard guard(*qp->mu);
      while (*qp->active_claims.begin() != claim) {
        qp->claims_cv->Wait(*qp->mu);
      }
    }

    {
      ScopedSpan span(tracer, TracePoint::kNvmeExecute, cmd.opcode);
      Execute(qp, cmd);
    }

    {
      SimLockGuard guard(*qp->mu);
      qp->active_claims.erase(qp->active_claims.find(claim));
      qp->claims_cv->NotifyAll();
    }
  }
}

void NvmeController::Execute(IoQueuePair* qp, const NvmeCommand& cmd) {
  if (cmd.is_kv()) {
    CCNVME_CHECK(kv_ssd_ != nullptr) << "KV opcode on a block-only controller";
    ExecuteKv(qp, cmd);
    return;
  }
  uint16_t status = 0;
  switch (cmd.op()) {
    case NvmeOpcode::kWrite: {
      const IoQueuePair::DataRef& ref = qp->data[cmd.cid];
      CCNVME_CHECK(ref.write_data != nullptr)
          << "write cid " << cmd.cid << " without a data descriptor";
      CCNVME_CHECK_EQ(ref.write_data->size(), cmd.byte_length());
      link_->DmaData(cmd.byte_length(), /*to_device=*/true);
      if (!ssd_->MediaWrite(cmd.byte_offset(), *ref.write_data, cmd.fua())) {
        status = 0x281;  // generic media write fault
      }
      break;
    }
    case NvmeOpcode::kRead: {
      const IoQueuePair::DataRef& ref = qp->data[cmd.cid];
      CCNVME_CHECK(ref.read_buf != nullptr)
          << "read cid " << cmd.cid << " without a data descriptor";
      ref.read_buf->resize(cmd.byte_length());
      if (!ssd_->MediaRead(cmd.byte_offset(), *ref.read_buf)) {
        status = 0x281;  // unrecovered read error
      }
      link_->DmaData(cmd.byte_length(), /*to_device=*/false);
      break;
    }
    case NvmeOpcode::kFlush: {
      ssd_->MediaFlush();
      break;
    }
    default:
      break;  // KV opcodes dispatched above
  }
  commands_executed_++;
  PostCompletion(qp, cmd, status, /*result=*/0);
}

void NvmeController::ExecuteKv(IoQueuePair* qp, const NvmeCommand& cmd) {
  uint16_t status = 0;
  uint32_t result = 0;
  switch (cmd.op()) {
    case NvmeOpcode::kKvStore: {
      // SLBA carries the value length; the payload rides the normal data
      // descriptor and is DMAed to the device before execution.
      const IoQueuePair::DataRef& ref = qp->data[cmd.cid];
      CCNVME_CHECK(ref.write_data != nullptr)
          << "KV Store cid " << cmd.cid << " without a data descriptor";
      CCNVME_CHECK_EQ(ref.write_data->size(), cmd.slba);
      link_->DmaData(ref.write_data->size(), /*to_device=*/true);
      status = kv_ssd_->ExecStore(cmd.key_span(), *ref.write_data);
      break;
    }
    case NvmeOpcode::kKvRetrieve: {
      const IoQueuePair::DataRef& ref = qp->data[cmd.cid];
      CCNVME_CHECK(ref.read_buf != nullptr)
          << "KV Retrieve cid " << cmd.cid << " without a data descriptor";
      status = kv_ssd_->ExecRetrieve(cmd.key_span(), ref.read_buf, &result);
      link_->DmaData(ref.read_buf->size(), /*to_device=*/false);
      break;
    }
    case NvmeOpcode::kKvDelete: {
      status = kv_ssd_->ExecDelete(cmd.key_span());
      break;
    }
    case NvmeOpcode::kKvExist: {
      status = kv_ssd_->ExecExist(cmd.key_span());
      break;
    }
    case NvmeOpcode::kKvList: {
      const IoQueuePair::DataRef& ref = qp->data[cmd.cid];
      CCNVME_CHECK(ref.read_buf != nullptr)
          << "KV List cid " << cmd.cid << " without a data descriptor";
      status = kv_ssd_->ExecList(cmd.cdw10(), cmd.cdw12, ref.read_buf, &result);
      link_->DmaData(ref.read_buf->size(), /*to_device=*/false);
      break;
    }
    default:
      status = kKvStatusInvalidField;  // unknown vendor opcode
      break;
  }
  commands_executed_++;
  PostCompletion(qp, cmd, status, result);
}

void NvmeController::PostCompletion(IoQueuePair* qp, const NvmeCommand& cmd, uint16_t status,
                                    uint32_t result) {
  // Post the CQE and (maybe) interrupt. CQ slot allocation and the phase
  // flip happen atomically w.r.t. other workers because nothing yields
  // between them.
  NvmeCompletion cqe;
  cqe.result = result;
  cqe.sq_head = qp->sq_fetch_head;
  cqe.sq_id = qp->qid;
  cqe.cid = cmd.cid;
  cqe.status = status;
  cqe.phase = qp->cq_phase;
  const uint16_t cq_slot = qp->cq_tail;
  qp->cq_tail = qp->SlotAfter(cq_slot);
  if (qp->cq_tail == 0) {
    qp->cq_phase = !qp->cq_phase;
  }
  cqe.Serialize(std::span<uint8_t>(qp->host_cq).subspan(
      static_cast<size_t>(cq_slot) * kCqeSize, kCqeSize));
  if (Tracer* t = sim_->tracer()) t->Instant(TracePoint::kCqePost, cmd.cid);
  if (Metrics* m = sim_->metrics()) {
    // The host's bottom half relies on CQEs landing in consecutive slots
    // with the phase tag flipping exactly at wraparound.
    m->monitors().OnCqePost(qp, qp->depth, cq_slot, cqe.phase);
  }
  link_->DmaQueuePost(kCqeSize);

  bool raise = true;
  if (config_.tx_aware_irq_coalescing && cmd.is_tx()) {
    // One interrupt per transaction: fire only when the last command of a
    // committed transaction finishes (§4.6).
    auto it = qp->tx_irq.find(cmd.tx_id);
    CCNVME_CHECK(it != qp->tx_irq.end());
    it->second.inflight--;
    raise = it->second.commit_seen && it->second.inflight == 0;
    if (raise) {
      qp->tx_irq.erase(it);
    }
  }
  if (raise) {
    link_->RaiseIrq(qp->irq_handler);
  }
}

void NvmeController::ExecuteAdmin(IoQueuePair* qp, const NvmeCommand& cmd) {
  commands_executed_++;
  uint16_t status = 0;
  uint32_t result = 0;
  switch (static_cast<AdminOpcode>(cmd.opcode)) {
    case AdminOpcode::kIdentify: {
      IoQueuePair::DataRef& ref = qp->data[cmd.cid];
      CCNVME_CHECK(ref.read_buf != nullptr) << "identify without a data buffer";
      ref.read_buf->resize(kIdentifyPageSize);
      IdentifyController id;
      id.serial = "CCNVME-SIM-0001";
      id.model = ssd_->config().name;
      id.firmware = "1.0";
      id.max_io_queues = config_.num_io_queues;
      id.pmr_size_bytes = pmr_.size();
      id.max_queue_depth = config_.queue_depth;
      id.Serialize(*ref.read_buf);
      link_->DmaData(kIdentifyPageSize, /*to_device=*/false);
      break;
    }
    case AdminOpcode::kGetLogPage: {
      IoQueuePair::DataRef& ref = qp->data[cmd.cid];
      CCNVME_CHECK(ref.read_buf != nullptr) << "get-log-page without a data buffer";
      ref.read_buf->resize(512);
      DeviceStatsLog log;
      log.commands_executed = commands_executed_;
      log.media_reads = ssd_->reads_served();
      log.media_writes = ssd_->writes_served();
      log.media_flushes = ssd_->flushes_served();
      log.Serialize(*ref.read_buf);
      link_->DmaData(512, /*to_device=*/false);
      break;
    }
    case AdminOpcode::kSetFeatures: {
      if ((cmd.cdw10() & 0xFF) == kFeatureNumQueues) {
        const uint16_t requested = static_cast<uint16_t>((cmd.cdw11() & 0xFFFF) + 1);
        const uint16_t granted = std::min<uint16_t>(requested, config_.num_io_queues);
        result = (static_cast<uint32_t>(granted - 1) << 16) | (granted - 1u);
      } else {
        status = 0x02;  // invalid field
      }
      break;
    }
    case AdminOpcode::kGetFeatures: {
      if ((cmd.cdw10() & 0xFF) == kFeatureNumQueues) {
        result = (static_cast<uint32_t>(config_.num_io_queues - 1) << 16) |
                 (config_.num_io_queues - 1u);
      } else {
        status = 0x02;
      }
      break;
    }
    case AdminOpcode::kCreateIoCq: {
      const uint16_t qid = static_cast<uint16_t>(cmd.cdw10() & 0xFFFF);
      const uint16_t depth = static_cast<uint16_t>((cmd.cdw10() >> 16) + 1);
      if (qid == 0 || qid > config_.num_io_queues || depth > config_.queue_depth) {
        status = 0x02;
        break;
      }
      pending_cqs_[qid] = depth;
      deleted_queues_.erase(qid);
      break;
    }
    case AdminOpcode::kCreateIoSq: {
      const uint16_t qid = static_cast<uint16_t>(cmd.cdw10() & 0xFFFF);
      auto it = pending_cqs_.find(qid);
      if (it == pending_cqs_.end()) {
        status = 0x01;  // CQ does not exist (spec: invalid queue identifier)
        break;
      }
      const bool pmr_backed = (cmd.cdw11() & kSqFlagPmrBacked) != 0;
      auto vec = irq_vectors_.find(qid);
      CCNVME_CHECK(vec != irq_vectors_.end())
          << "host did not register an MSI-X vector for queue " << qid;
      CreateIoQueuePairWithDepth(qid, it->second, pmr_backed,
                                 static_cast<size_t>(cmd.prp1), vec->second);
      pending_cqs_.erase(it);
      break;
    }
    case AdminOpcode::kDeleteIoSq:
    case AdminOpcode::kDeleteIoCq: {
      const uint16_t qid = static_cast<uint16_t>(cmd.cdw10() & 0xFFFF);
      deleted_queues_.insert(qid);
      break;
    }
  }
  PostCompletion(qp, cmd, status, result);
}

}  // namespace ccnvme

// NVMe admin command set (the subset the stack uses).
//
// The host brings the controller up the way the spec prescribes: submit
// Identify to learn the controller's capabilities, negotiate the queue
// count with Set Features (Number of Queues), then create each I/O
// completion/submission queue pair with Create I/O CQ / Create I/O SQ.
// ccNVMe's persistent submission queues are requested with a
// vendor-specific flag in the Create I/O SQ command (the PMR offset rides
// in PRP1), which is how a PMR-aware controller distinguishes a P-SQ from a
// host-memory SQ without any new opcode.
#ifndef SRC_NVME_ADMIN_H_
#define SRC_NVME_ADMIN_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/nvme/command.h"

namespace ccnvme {

enum class AdminOpcode : uint8_t {
  kDeleteIoSq = 0x00,
  kCreateIoSq = 0x01,
  kGetLogPage = 0x02,
  kDeleteIoCq = 0x04,
  kCreateIoCq = 0x05,
  kIdentify = 0x06,
  kSetFeatures = 0x09,
  kGetFeatures = 0x0A,
};

// Feature identifiers (CDW10 of Set/Get Features).
inline constexpr uint32_t kFeatureNumQueues = 0x07;

// Vendor-specific flag in Create I/O SQ CDW11: the SQ lives in the PMR at
// the offset given by PRP1 (ccNVMe's persistent submission queue).
inline constexpr uint32_t kSqFlagPmrBacked = 1u << 16;
// Standard "physically contiguous" flag.
inline constexpr uint32_t kSqFlagContiguous = 1u << 0;

inline constexpr size_t kIdentifyPageSize = 4096;

// Identify Controller data structure (CNS 0x01), 4096 bytes. Only the
// fields the host consumes are modeled, at spec-faithful offsets.
struct IdentifyController {
  uint16_t vid = 0xCC17;
  std::string serial;      // bytes 4..23
  std::string model;       // bytes 24..63
  std::string firmware;    // bytes 64..71
  uint32_t num_namespaces = 1;   // bytes 516..519 (NN)
  uint16_t max_io_queues = 0;    // modeled at bytes 520..521
  uint64_t pmr_size_bytes = 0;   // modeled at bytes 524..531
  uint16_t max_queue_depth = 0;  // modeled at bytes 532..533

  void Serialize(std::span<uint8_t> out) const;
  static Result<IdentifyController> Parse(std::span<const uint8_t> in);
};

// Get Log Page (vendor page 0xC0): live device statistics, used by the
// inspector tooling.
struct DeviceStatsLog {
  uint64_t commands_executed = 0;
  uint64_t media_reads = 0;
  uint64_t media_writes = 0;
  uint64_t media_flushes = 0;

  void Serialize(std::span<uint8_t> out) const;
  static Result<DeviceStatsLog> Parse(std::span<const uint8_t> in);
};

// Builders for the admin SQEs the host submits.
NvmeCommand MakeIdentifyCmd();
NvmeCommand MakeGetLogPageCmd(uint8_t page_id);
NvmeCommand MakeSetNumQueuesCmd(uint16_t requested);
NvmeCommand MakeCreateIoCqCmd(uint16_t qid, uint16_t depth);
NvmeCommand MakeCreateIoSqCmd(uint16_t qid, uint16_t depth, bool pmr_backed,
                              uint64_t pmr_offset);
NvmeCommand MakeDeleteIoSqCmd(uint16_t qid);
NvmeCommand MakeDeleteIoCqCmd(uint16_t qid);

}  // namespace ccnvme

#endif  // SRC_NVME_ADMIN_H_

// Persistent Memory Region (PMR, NVMe 1.4 §?).
//
// A byte-addressable region of capacitor-backed DRAM exposed on the SSD's
// BAR. CPU loads/stores reach it over PCIe (timing modeled by PcieLink /
// WcBuffer); its contents survive power loss — the device saves the region
// to flash on a power cut and restores it on the next probe (§4.4 of the
// paper), which this model represents by simply never clearing the bytes.
#ifndef SRC_NVME_PMR_H_
#define SRC_NVME_PMR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/logging.h"

namespace ccnvme {

class Pmr {
 public:
  explicit Pmr(size_t size_bytes = 2 * 1024 * 1024) : bytes_(size_bytes, 0) {}

  size_t size() const { return bytes_.size(); }

  void Write(size_t offset, std::span<const uint8_t> data) {
    CCNVME_CHECK_LE(offset + data.size(), bytes_.size());
    std::memcpy(bytes_.data() + offset, data.data(), data.size());
  }

  void Read(size_t offset, std::span<uint8_t> out) const {
    CCNVME_CHECK_LE(offset + out.size(), bytes_.size());
    std::memcpy(out.data(), bytes_.data() + offset, out.size());
  }

  void WriteU32(size_t offset, uint32_t v) {
    CCNVME_CHECK_LE(offset + 4, bytes_.size());
    PutU32(bytes_, offset, v);
  }
  uint32_t ReadU32(size_t offset) const {
    CCNVME_CHECK_LE(offset + 4, bytes_.size());
    return GetU32(bytes_, offset);
  }

  std::span<const uint8_t> bytes() const { return bytes_; }
  std::span<uint8_t> mutable_bytes() { return bytes_; }

  // Fills the region with zeros — models a *fresh* device, not a power cut
  // (a power cut preserves PMR contents by design).
  void FactoryReset() { std::fill(bytes_.begin(), bytes_.end(), 0); }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace ccnvme

#endif  // SRC_NVME_PMR_H_

// Persistent Memory Region (PMR, NVMe 1.4 §?).
//
// A byte-addressable region of capacitor-backed DRAM exposed on the SSD's
// BAR. CPU loads/stores reach it over PCIe (timing modeled by PcieLink /
// WcBuffer); its contents survive power loss — the device saves the region
// to flash on a power cut and restores it on the next probe (§4.4 of the
// paper), which this model represents by simply never clearing the bytes.
#ifndef SRC_NVME_PMR_H_
#define SRC_NVME_PMR_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/logging.h"

namespace ccnvme {

// Granularity at which an MMIO store to the PMR can tear across a power
// cut: the PCIe write bursts carrying a write-combining flush move whole
// naturally-aligned 8-byte words, so any word subset of an unfenced store
// may have landed — never a partial word.
inline constexpr size_t kMmioWordSize = 8;

class Pmr {
 public:
  explicit Pmr(size_t size_bytes = 2 * 1024 * 1024) : bytes_(size_bytes, 0) {}

  size_t size() const { return bytes_.size(); }

  void Write(size_t offset, std::span<const uint8_t> data) {
    CCNVME_CHECK_LE(offset + data.size(), bytes_.size());
    std::memcpy(bytes_.data() + offset, data.data(), data.size());
  }

  void Read(size_t offset, std::span<uint8_t> out) const {
    CCNVME_CHECK_LE(offset + out.size(), bytes_.size());
    std::memcpy(out.data(), bytes_.data() + offset, out.size());
  }

  void WriteU32(size_t offset, uint32_t v) {
    CCNVME_CHECK_LE(offset + 4, bytes_.size());
    PutU32(bytes_, offset, v);
  }
  uint32_t ReadU32(size_t offset) const {
    CCNVME_CHECK_LE(offset + 4, bytes_.size());
    return GetU32(bytes_, offset);
  }

  std::span<const uint8_t> bytes() const { return bytes_; }
  std::span<uint8_t> mutable_bytes() { return bytes_; }

  // Applies a TORN store: only the words of |data| selected by |word_mask|
  // (bit w covers bytes [8w, 8w+8) of |data|, clipped to its size) reach
  // the region; the rest keep their previous contents. Used by the
  // crash-state explorer to model an unfenced WC store interrupted by a
  // power cut.
  void ApplyTornWords(size_t offset, std::span<const uint8_t> data, uint64_t word_mask) {
    CCNVME_CHECK_LE(offset + data.size(), bytes_.size());
    const size_t words = (data.size() + kMmioWordSize - 1) / kMmioWordSize;
    CCNVME_CHECK_LE(words, 64u);
    for (size_t w = 0; w < words; ++w) {
      if (((word_mask >> w) & 1) == 0) {
        continue;
      }
      const size_t begin = w * kMmioWordSize;
      const size_t end = std::min(begin + kMmioWordSize, data.size());
      std::memcpy(bytes_.data() + offset + begin, data.data() + begin, end - begin);
    }
  }

  // Fills the region with zeros — models a *fresh* device, not a power cut
  // (a power cut preserves PMR contents by design).
  void FactoryReset() { std::fill(bytes_.begin(), bytes_.end(), 0); }

 private:
  std::vector<uint8_t> bytes_;
};

}  // namespace ccnvme

#endif  // SRC_NVME_PMR_H_

// NVMe command and completion formats, including the ccNVMe extensions.
//
// ccNVMe embeds its transaction metadata in fields the NVMe 1.2-1.4 specs
// reserve (Table 2 of the paper), so a ccNVMe command is a valid NVMe
// command and an unmodified controller can fetch and execute it:
//   * Dword 2-3  (bits 0:63)  -> 64-bit transaction ID
//   * Dword 12   (bits 16:19) -> REQ_TX / REQ_TX_COMMIT attributes
//
// Commands serialize to the standard 64-byte submission-queue entry layout;
// the persistent submission queues store exactly these bytes, and crash
// recovery parses them back out of the PMR.
#ifndef SRC_NVME_COMMAND_H_
#define SRC_NVME_COMMAND_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace ccnvme {

inline constexpr size_t kSqeSize = 64;
inline constexpr size_t kCqeSize = 16;
inline constexpr uint32_t kLbaSize = 4096;

enum class NvmeOpcode : uint8_t {
  kFlush = 0x00,
  kWrite = 0x01,
  kRead = 0x02,
  // KV command set (NVMe-KV TP 4015 opcodes where they exist; List moved
  // above 0x80 so every KV opcode routes through one dispatch test).
  kKvStore = 0x81,
  kKvList = 0x85,
  kKvRetrieve = 0x90,
  kKvDelete = 0xA1,
  kKvExist = 0xB3,
};

// CDW12 bit layout for I/O commands.
inline constexpr uint32_t kCdw12NlbMask = 0xFFFF;     // 0-based block count
inline constexpr uint32_t kCdw12ReqTx = 1u << 16;     // ccNVMe: part of a transaction
inline constexpr uint32_t kCdw12ReqTxCommit = 1u << 17;  // ccNVMe: commit record
inline constexpr uint32_t kCdw12Fua = 1u << 30;       // NVMe: force unit access

struct NvmeCommand {
  uint8_t opcode = 0;
  uint16_t cid = 0;
  uint32_t nsid = 1;
  uint64_t tx_id = 0;  // ccNVMe transaction ID (reserved dwords 2-3)
  // Request-flow attribution id (src/trace). Rides in CDW4-5, which the
  // 1.2-1.4 specs also reserve; always serialized (even with tracing off)
  // so enabling a tracer never changes the bytes on the wire.
  uint64_t trace_req = 0;
  uint64_t prp1 = 0;   // host data handle (models the PRP list)
  uint64_t slba = 0;
  uint32_t cdw12 = 0;
  // KV command set: up-to-16-byte key + length. Rides in reserved SQE
  // bytes ([32,40) and [52,61)) so a KV command is still a well-formed
  // 64-byte SQE; zero for block commands.
  std::array<uint8_t, 16> key{};
  uint8_t key_len = 0;

  NvmeOpcode op() const { return static_cast<NvmeOpcode>(opcode); }
  // Number of logical blocks (NLB is 0-based on the wire).
  uint32_t num_blocks() const { return (cdw12 & kCdw12NlbMask) + 1; }
  void set_num_blocks(uint32_t n) {
    cdw12 = (cdw12 & ~kCdw12NlbMask) | ((n - 1) & kCdw12NlbMask);
  }
  uint64_t byte_offset() const { return slba * kLbaSize; }
  // Admin commands reinterpret the SLBA dwords as CDW10/CDW11.
  uint32_t cdw10() const { return static_cast<uint32_t>(slba & 0xFFFFFFFFu); }
  uint32_t cdw11() const { return static_cast<uint32_t>(slba >> 32); }
  uint64_t byte_length() const { return static_cast<uint64_t>(num_blocks()) * kLbaSize; }

  bool is_tx() const { return (cdw12 & kCdw12ReqTx) != 0; }
  bool is_tx_commit() const { return (cdw12 & kCdw12ReqTxCommit) != 0; }
  bool fua() const { return (cdw12 & kCdw12Fua) != 0; }
  bool is_io() const {
    return op() == NvmeOpcode::kWrite || op() == NvmeOpcode::kRead;
  }
  bool is_kv() const { return opcode >= 0x80; }
  std::span<const uint8_t> key_span() const {
    return std::span<const uint8_t>(key.data(), key_len);
  }
  void set_key(std::span<const uint8_t> k) {
    key.fill(0);
    std::copy(k.begin(), k.end(), key.begin());
    key_len = static_cast<uint8_t>(k.size());
  }

  void Serialize(std::span<uint8_t> out) const;
  static NvmeCommand Parse(std::span<const uint8_t> in);
};

// Completion queue entry. The phase tag flips each time the ring wraps so
// the host can detect new entries without a head register read.
struct NvmeCompletion {
  uint32_t result = 0;
  uint16_t sq_head = 0;
  uint16_t sq_id = 0;
  uint16_t cid = 0;
  bool phase = false;
  uint16_t status = 0;  // 0 == success

  void Serialize(std::span<uint8_t> out) const;
  static NvmeCompletion Parse(std::span<const uint8_t> in);
};

}  // namespace ccnvme

#endif  // SRC_NVME_COMMAND_H_

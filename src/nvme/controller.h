// NVMe controller (device-side) model.
//
// Implements the command processing flow of Figure 1: the host rings an SQ
// doorbell; controller workers fetch SQEs (a PCIe DMA when the SQ is in host
// memory, a device-internal read when it is a ccNVMe P-SQ inside the PMR),
// move the data, execute against the SSD media model, post a CQE to the host
// CQ ring and raise MSI-X. Multiple workers per queue model the controller's
// internal parallelism, so commands may complete out of order — exactly the
// behaviour the host-side ccNVMe driver must (and does) tolerate.
#ifndef SRC_NVME_CONTROLLER_H_
#define SRC_NVME_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <map>
#include <set>
#include <vector>

#include "src/common/bytes.h"
#include "src/nvme/command.h"
#include "src/nvme/pmr.h"
#include "src/pcie/pcie_link.h"
#include "src/sim/sync.h"
#include "src/ssd/ssd_model.h"

namespace ccnvme {

class KvSsd;

// Shared queue-pair state. The rings live in host memory (std::vector) or in
// the PMR; the doorbells are device registers written via modeled MMIO.
// Plain fields are safe: the simulator guarantees one runner at a time.
struct IoQueuePair {
  uint16_t qid = 0;
  uint16_t depth = 0;
  bool is_admin = false;

  // Submission ring backing.
  bool sq_in_pmr = false;
  size_t pmr_sq_offset = 0;      // valid when sq_in_pmr
  std::vector<uint8_t> host_sq;  // valid when !sq_in_pmr

  // Completion ring (always host memory).
  std::vector<uint8_t> host_cq;

  // Doorbell registers (device side).
  uint16_t sq_tail_db = 0;
  uint16_t cq_head_db = 0;

  // Device progress.
  uint16_t sq_fetch_head = 0;  // next SQE to fetch (fetch is in order)
  uint16_t cq_tail = 0;
  bool cq_phase = true;

  // Host data descriptors, indexed by cid — models the PRP lists. Host DRAM
  // is volatile: nothing here survives a crash.
  struct DataRef {
    const Buffer* write_data = nullptr;
    Buffer* read_buf = nullptr;
  };
  std::vector<DataRef> data;

  // MSI-X target registered by the host driver. Runs in event context.
  std::function<void()> irq_handler;

  // Device-side wakeup for doorbell rings.
  std::unique_ptr<SimMutex> mu;
  std::unique_ptr<SimCondVar> doorbell_cv;

  // Execution-order fence for FLUSH. Every fetched command registers its
  // claim sequence; a FLUSH executes only once it is the oldest active
  // claim, i.e. all previously fetched commands have finished. Other
  // commands execute in any order (NVMe prescribes none).
  uint64_t next_claim_seq = 0;
  std::multiset<uint64_t> active_claims;
  std::unique_ptr<SimCondVar> claims_cv;

  // Transaction-aware interrupt coalescing (§4.6): per-transaction count of
  // fetched-but-not-completed commands and whether the commit was seen. One
  // MSI-X fires when the last command of a committed transaction completes.
  struct TxIrqState {
    int inflight = 0;
    bool commit_seen = false;
  };
  std::map<uint64_t, TxIrqState> tx_irq;

  uint16_t SlotAfter(uint16_t slot) const {
    return static_cast<uint16_t>((slot + 1) % depth);
  }
};

struct NvmeControllerConfig {
  uint16_t num_io_queues = 1;
  uint16_t queue_depth = 256;
  // Device internal parallelism per queue (how many commands a queue can
  // have in flight inside the controller).
  int workers_per_queue = 8;
  // Device-internal latency to read one SQE out of the PMR (no PCIe hop).
  uint64_t pmr_fetch_ns = 250;
  size_t pmr_size = 2 * 1024 * 1024;
  // Transaction-aware interrupt coalescing (§4.6): raise MSI-X only when a
  // commit (or non-transactional) command completes. Off by default — the
  // paper discusses it as an optional controller-side optimization.
  bool tx_aware_irq_coalescing = false;
};

class NvmeController {
 public:
  NvmeController(Simulator* sim, PcieLink* link, SsdModel* ssd,
                 const NvmeControllerConfig& config);

  // Direct queue-pair creation: the shortcut the drivers use for a
  // controller whose admin bring-up already happened (see CreateAdminQueue
  // for the full protocol path, exercised by AdminClient).
  IoQueuePair* CreateIoQueuePair(uint16_t qid, bool sq_in_pmr, size_t pmr_sq_offset,
                                 std::function<void()> irq_handler);
  // As above with an explicit queue depth (the admin Create I/O SQ path).
  IoQueuePair* CreateIoQueuePairWithDepth(uint16_t qid, uint16_t depth, bool sq_in_pmr,
                                          size_t pmr_sq_offset,
                                          std::function<void()> irq_handler);

  // --- Admin command set --------------------------------------------------

  // Creates the admin queue pair (queue id 0). Admin commands submitted to
  // it drive Identify / Set Features / Create & Delete I/O queues /
  // Get Log Page. MSI-X vector 0 is the admin interrupt.
  IoQueuePair* CreateAdminQueue(std::function<void()> irq_handler);
  // Registers the host handler for an MSI-X vector; Create I/O CQ binds a
  // queue to a vector (we use vector = qid).
  void RegisterIrqVector(uint16_t vector, std::function<void()> handler);

  // Looks up a live queue pair by id (nullptr if absent/deleted).
  IoQueuePair* FindQueue(uint16_t qid);

  // Doorbell writes. The *link* timing (MMIO) is paid by the driver before
  // calling these; they model the device's reaction.
  void RingSqDoorbell(IoQueuePair* qp, uint16_t new_tail);
  void RingCqDoorbell(IoQueuePair* qp, uint16_t new_head);

  Pmr& pmr() { return pmr_; }
  SsdModel& ssd() { return *ssd_; }
  const NvmeControllerConfig& config() const { return config_; }

  // Attaches the KV-SSD front-end: opcodes >= 0x80 dispatch to it instead
  // of the block command set (see src/nvme/kv_ssd.h).
  void set_kv_ssd(KvSsd* kv) { kv_ssd_ = kv; }
  KvSsd* kv_ssd() { return kv_ssd_; }

  uint64_t commands_executed() const { return commands_executed_; }

 private:
  void WorkerLoop(IoQueuePair* qp);
  void Execute(IoQueuePair* qp, const NvmeCommand& cmd);
  void ExecuteKv(IoQueuePair* qp, const NvmeCommand& cmd);
  void ExecuteAdmin(IoQueuePair* qp, const NvmeCommand& cmd);
  void PostCompletion(IoQueuePair* qp, const NvmeCommand& cmd, uint16_t status,
                      uint32_t result);
  void ReadSqe(IoQueuePair* qp, uint16_t slot, std::span<uint8_t> out);

  Simulator* sim_;
  PcieLink* link_;
  SsdModel* ssd_;
  NvmeControllerConfig config_;
  Pmr pmr_;
  KvSsd* kv_ssd_ = nullptr;
  std::vector<std::unique_ptr<IoQueuePair>> queues_;
  uint64_t commands_executed_ = 0;
  // Admin state.
  std::map<uint16_t, uint16_t> pending_cqs_;  // qid -> depth (CQ created, SQ pending)
  std::map<uint16_t, std::function<void()>> irq_vectors_;
  std::set<uint16_t> deleted_queues_;
};

}  // namespace ccnvme

#endif  // SRC_NVME_CONTROLLER_H_

#include "src/nvme/command.h"

#include "src/common/logging.h"

namespace ccnvme {

void NvmeCommand::Serialize(std::span<uint8_t> out) const {
  CCNVME_CHECK_GE(out.size(), kSqeSize);
  std::memset(out.data(), 0, kSqeSize);
  out[0] = opcode;                 // CDW0 byte 0: opcode
  PutU16(out, 2, cid);             // CDW0 bytes 2-3: command identifier
  PutU32(out, 4, nsid);            // CDW1: namespace
  PutU64(out, 8, tx_id);           // CDW2-3: ccNVMe transaction ID
  PutU64(out, 16, trace_req);      // CDW4-5: trace request id (reserved)
  PutU64(out, 24, prp1);           // CDW6-7: PRP entry 1
  PutU64(out, 40, slba);           // CDW10-11: starting LBA
  PutU32(out, 48, cdw12);          // CDW12: NLB | attrs | FUA
  // KV key: bytes 32-39 (CDW8-9) and 52-59 (CDW13-14), length at byte 60.
  std::memcpy(out.data() + 32, key.data(), 8);
  std::memcpy(out.data() + 52, key.data() + 8, 8);
  out[60] = key_len;
}

NvmeCommand NvmeCommand::Parse(std::span<const uint8_t> in) {
  CCNVME_CHECK_GE(in.size(), kSqeSize);
  NvmeCommand cmd;
  cmd.opcode = in[0];
  cmd.cid = GetU16(in, 2);
  cmd.nsid = GetU32(in, 4);
  cmd.tx_id = GetU64(in, 8);
  cmd.trace_req = GetU64(in, 16);
  cmd.prp1 = GetU64(in, 24);
  cmd.slba = GetU64(in, 40);
  cmd.cdw12 = GetU32(in, 48);
  std::memcpy(cmd.key.data(), in.data() + 32, 8);
  std::memcpy(cmd.key.data() + 8, in.data() + 52, 8);
  cmd.key_len = in[60];
  return cmd;
}

void NvmeCompletion::Serialize(std::span<uint8_t> out) const {
  CCNVME_CHECK_GE(out.size(), kCqeSize);
  std::memset(out.data(), 0, kCqeSize);
  PutU32(out, 0, result);
  PutU16(out, 8, sq_head);
  PutU16(out, 10, sq_id);
  PutU16(out, 12, cid);
  const uint16_t status_field = static_cast<uint16_t>((status << 1) | (phase ? 1 : 0));
  PutU16(out, 14, status_field);
}

NvmeCompletion NvmeCompletion::Parse(std::span<const uint8_t> in) {
  CCNVME_CHECK_GE(in.size(), kCqeSize);
  NvmeCompletion cqe;
  cqe.result = GetU32(in, 0);
  cqe.sq_head = GetU16(in, 8);
  cqe.sq_id = GetU16(in, 10);
  cqe.cid = GetU16(in, 12);
  const uint16_t status_field = GetU16(in, 14);
  cqe.phase = (status_field & 1) != 0;
  cqe.status = static_cast<uint16_t>(status_field >> 1);
  return cqe;
}

}  // namespace ccnvme

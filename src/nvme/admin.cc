#include "src/nvme/admin.h"

#include "src/common/logging.h"

namespace ccnvme {

void IdentifyController::Serialize(std::span<uint8_t> out) const {
  CCNVME_CHECK_GE(out.size(), kIdentifyPageSize);
  std::memset(out.data(), 0, kIdentifyPageSize);
  PutU16(out, 0, vid);
  PutString(out, 4, 20, serial);
  PutString(out, 24, 40, model);
  PutString(out, 64, 8, firmware);
  PutU32(out, 516, num_namespaces);
  PutU16(out, 520, max_io_queues);
  PutU64(out, 524, pmr_size_bytes);
  PutU16(out, 532, max_queue_depth);
}

Result<IdentifyController> IdentifyController::Parse(std::span<const uint8_t> in) {
  if (in.size() < kIdentifyPageSize) {
    return InvalidArgument("short identify page");
  }
  IdentifyController id;
  id.vid = GetU16(in, 0);
  id.serial = GetString(in, 4, 20);
  id.model = GetString(in, 24, 40);
  id.firmware = GetString(in, 64, 8);
  id.num_namespaces = GetU32(in, 516);
  id.max_io_queues = GetU16(in, 520);
  id.pmr_size_bytes = GetU64(in, 524);
  id.max_queue_depth = GetU16(in, 532);
  return id;
}

void DeviceStatsLog::Serialize(std::span<uint8_t> out) const {
  CCNVME_CHECK_GE(out.size(), size_t{512});
  std::memset(out.data(), 0, 512);
  PutU64(out, 0, commands_executed);
  PutU64(out, 8, media_reads);
  PutU64(out, 16, media_writes);
  PutU64(out, 24, media_flushes);
}

Result<DeviceStatsLog> DeviceStatsLog::Parse(std::span<const uint8_t> in) {
  if (in.size() < 512) {
    return InvalidArgument("short stats log page");
  }
  DeviceStatsLog log;
  log.commands_executed = GetU64(in, 0);
  log.media_reads = GetU64(in, 8);
  log.media_writes = GetU64(in, 16);
  log.media_flushes = GetU64(in, 24);
  return log;
}

NvmeCommand MakeIdentifyCmd() {
  NvmeCommand cmd;
  cmd.opcode = static_cast<uint8_t>(AdminOpcode::kIdentify);
  cmd.slba = 0x01;  // CDW10 = CNS 0x01 (controller)
  return cmd;
}

NvmeCommand MakeGetLogPageCmd(uint8_t page_id) {
  NvmeCommand cmd;
  cmd.opcode = static_cast<uint8_t>(AdminOpcode::kGetLogPage);
  cmd.slba = page_id;  // CDW10 low byte = LID
  return cmd;
}

NvmeCommand MakeSetNumQueuesCmd(uint16_t requested) {
  NvmeCommand cmd;
  cmd.opcode = static_cast<uint8_t>(AdminOpcode::kSetFeatures);
  // CDW10 = FID, CDW11 = (NCQR << 16) | NSQR, both 0-based.
  cmd.slba = kFeatureNumQueues |
             (static_cast<uint64_t>(((requested - 1u) << 16) | (requested - 1u)) << 32);
  return cmd;
}

NvmeCommand MakeCreateIoCqCmd(uint16_t qid, uint16_t depth) {
  NvmeCommand cmd;
  cmd.opcode = static_cast<uint8_t>(AdminOpcode::kCreateIoCq);
  // CDW10 = (queue size - 1) << 16 | qid.
  cmd.slba = static_cast<uint64_t>((static_cast<uint32_t>(depth - 1) << 16) | qid);
  return cmd;
}

NvmeCommand MakeCreateIoSqCmd(uint16_t qid, uint16_t depth, bool pmr_backed,
                              uint64_t pmr_offset) {
  NvmeCommand cmd;
  cmd.opcode = static_cast<uint8_t>(AdminOpcode::kCreateIoSq);
  uint32_t cdw11 = kSqFlagContiguous | (static_cast<uint32_t>(qid) << 17);
  if (pmr_backed) {
    cdw11 |= kSqFlagPmrBacked;
  }
  cmd.slba = static_cast<uint64_t>((static_cast<uint32_t>(depth - 1) << 16) | qid) |
             (static_cast<uint64_t>(cdw11) << 32);
  cmd.prp1 = pmr_offset;
  return cmd;
}

NvmeCommand MakeDeleteIoSqCmd(uint16_t qid) {
  NvmeCommand cmd;
  cmd.opcode = static_cast<uint8_t>(AdminOpcode::kDeleteIoSq);
  cmd.slba = qid;
  return cmd;
}

NvmeCommand MakeDeleteIoCqCmd(uint16_t qid) {
  NvmeCommand cmd;
  cmd.opcode = static_cast<uint8_t>(AdminOpcode::kDeleteIoCq);
  cmd.slba = qid;
  return cmd;
}

}  // namespace ccnvme

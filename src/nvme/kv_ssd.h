// KV-native SSD front-end: the NVMe KV command set executed directly over
// the FTL, with KV Store made atomic across FTL map + data.
//
// This is the repo's fourth durability architecture (next to jbd2, horae
// and ccnvme on the block path and the NVM write-ahead log): the device
// itself guarantees that a KV Store is all-or-nothing, so the host needs
// no journal at all.
//
// Persistent state lives in two domains:
//   * flash (via SsdModel): value pages and the flash copies of L2P map
//     segments, both written out-of-place by the FTL;
//   * the controller PMR (capacitor-backed, survives power cuts): a hash
//     directory of keys, a shadow ring of per-command map entries, the
//     global translation directory (GTD: map-segment roots) and a
//     superblock. All laid out top-down from the end of the PMR so the
//     ccNVMe P-SQ area at the bottom is untouched.
//
// KV Store commit protocol (the crash window src/crashtest enumerates):
//   1. write the value's data pages to flash (out-of-place, blocking);
//   2. stage the L2P updates in the cached map segments (volatile);
//   3. ARM: WC-store the key bytes (first insert) and a checksummed
//      32-byte shadow map-entry {seq, lpn, npages, ppn, slot} into the
//      PMR shadow ring, then fence — the shadow is now durable;
//   4. COMMIT: WC-store the slot's single 8-byte meta word (lpn, length,
//      key length, used bit), then fence.
// The meta word is the atomicity point. A crash before 4's store leaves
// the old value (directory unchanged, staged map volatile); a crash after
// it finds the shadow already durable (any fence ordering the meta word
// into the PMR also ordered the earlier shadow), so recovery replays the
// shadow into the map and the new value is complete. Tearing is a
// non-issue by construction: the meta word is one 8-byte MMIO word, and
// the key/shadow bytes are fenced before the meta word is stored.
// Recovery replays crc-clean shadows with consecutive sequence numbers
// above the checkpoint, then rebuilds physical-page liveness from the
// directory — a directory entry whose LPNs have no mapping is a
// consistency violation (exactly what test_skip_ftl_shadow_commit produces).
//
// Everything here executes on NvmeController worker actors under one
// device mutex; media waits and PMR store costs are virtual-time blocking.
#ifndef SRC_NVME_KV_SSD_H_
#define SRC_NVME_KV_SSD_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/block/bio_event.h"
#include "src/common/status.h"
#include "src/nvme/pmr.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/ssd/ftl.h"
#include "src/ssd/ssd_model.h"

namespace ccnvme {

// Recorder qid for all KV-path PMR events (the FTL owns no host SQ; the
// value just namespaces its WC-fence domain away from real queues).
inline constexpr uint16_t kFtlQid = 0xFFFE;

// NVMe status codes for the KV command set.
inline constexpr uint16_t kKvStatusNotFound = 0x87;   // key does not exist
inline constexpr uint16_t kKvStatusCapacity = 0x88;   // device/table full
inline constexpr uint16_t kKvStatusInvalidField = 0x02;
inline constexpr uint16_t kKvStatusInternal = 0x06;
inline constexpr uint16_t kKvStatusMediaError = 0x281;

inline constexpr uint32_t kKvSsdMagic = 0x4b564343;  // "CCKV" little-endian
inline constexpr uint32_t kKvSsdVersion = 1;
inline constexpr size_t kKvSuperblockBytes = 128;
inline constexpr size_t kKvDirSlotBytes = 32;   // 16B key + pad + 8B meta
inline constexpr size_t kKvShadowBytes = 32;
inline constexpr uint32_t kKvMaxKeyLen = 16;

struct KvSsdConfig {
  bool enabled = false;           // StackConfig gate: builds the KV path
  uint32_t dir_slots = 1024;      // hash directory (linear probing)
  uint32_t shadow_slots = 64;     // shadow ring; wrap forces a checkpoint
  uint64_t flash_pages = 4096;    // physical geometry (see FtlConfig)
  uint32_t pages_per_block = 64;
  uint64_t total_lpns = 3072;
  uint32_t map_entries_per_segment = 512;
  uint32_t map_cache_segments = 4;
  uint32_t gc_free_blocks_low = 2;
  uint64_t erase_latency_ns = 2'000'000;
  uint64_t pmr_store_ns = 100;    // controller-internal PMR store cost
  uint64_t pmr_fence_ns = 250;    // controller-internal persist fence cost
  uint32_t max_value_bytes = 64 * 1024;  // <= pages_per_block * 4KB
  // Injected bug: commit the directory meta word WITHOUT first fencing the
  // shadow map-entry. Breaks map+data atomicity; must be caught by the
  // ftl.map_data_atomicity monitor AND the crash explorer.
  bool test_skip_ftl_shadow_commit = false;

  FtlConfig ToFtlConfig() const {
    FtlConfig f;
    f.flash_pages = flash_pages;
    f.pages_per_block = pages_per_block;
    f.total_lpns = total_lpns;
    f.map_entries_per_segment = map_entries_per_segment;
    f.map_cache_segments = map_cache_segments;
    f.gc_free_blocks_low = gc_free_blocks_low;
    return f;
  }
};

// PMR layout of the KV metadata, top-down from the end of the region.
// Self-describing: the superblock records the geometry, so tools can parse
// a crash image without the run's StackConfig.
struct KvPmrLayout {
  size_t sb_off = 0;
  size_t gtd_off = 0;
  size_t shadow_off = 0;
  size_t dir_off = 0;
  uint32_t num_segments = 0;

  static KvPmrLayout From(uint32_t dir_slots, uint32_t shadow_slots,
                          uint64_t total_lpns, uint32_t map_entries_per_segment,
                          size_t pmr_size);
};

class KvSsd : public FtlEnv {
 public:
  KvSsd(Simulator* sim, SsdModel* ssd, Pmr* pmr, const KvSsdConfig& config);
  ~KvSsd() override;

  void set_recorder(BioRecorder recorder) { recorder_ = std::move(recorder); }
  void set_device_id(uint16_t id) { device_id_ = id; }

  // Factory-formats the PMR metadata (fresh device; not recorded, like
  // mkfs). Call from an actor.
  Status Format();
  // Mount-time recovery: superblock + GTD + shadow replay + directory walk
  // rebuilding physical liveness. Call from an actor.
  Status Attach();
  bool attached() const { return attached_; }
  // Structural invariants of the attached state: every live directory entry
  // maps every LPN, no LPN or PPN claimed twice, fields in range. The
  // crash explorer calls this on every reconstructed state.
  Status CheckConsistency();

  // --- KV command execution (NvmeController worker actors) ----------------
  // Return an NVMe status code; |result| (where present) is CQE dword 0.
  uint16_t ExecStore(std::span<const uint8_t> key, std::span<const uint8_t> value);
  uint16_t ExecRetrieve(std::span<const uint8_t> key, Buffer* out, uint32_t* result);
  uint16_t ExecDelete(std::span<const uint8_t> key);
  uint16_t ExecExist(std::span<const uint8_t> key);
  // Cursor scan: starts at directory |start_slot|, emits up to |max_keys|
  // live keys as [u32 next_slot][u32 count][count x (u8 len + bytes)];
  // next_slot = 0xFFFFFFFF once the table is exhausted. |result| = count.
  uint16_t ExecList(uint32_t start_slot, uint32_t max_keys, Buffer* out,
                    uint32_t* result);

  // --- stats ---------------------------------------------------------------
  const Ftl& ftl() const { return *ftl_; }
  const KvSsdConfig& config() const { return config_; }
  const KvPmrLayout& layout() const { return layout_; }
  uint64_t stores() const { return stores_; }
  uint64_t retrieves() const { return retrieves_; }
  uint64_t deletes() const { return deletes_; }
  uint64_t last_seq() const { return last_seq_; }
  uint64_t checkpoint_seq() const { return checkpoint_seq_; }
  uint64_t live_keys() const { return live_keys_; }

  // --- FtlEnv --------------------------------------------------------------
  void PersistGtd(uint32_t seg, uint64_t ppn) override;
  uint64_t LoadGtd(uint32_t seg) override;
  bool FlashWrite(uint64_t ppn, const Buffer& data) override;
  bool FlashRead(uint64_t ppn, Buffer* out) override;
  void EraseWait() override;
  void OnMapCheckpointed() override;

  // Directory meta-word packing (shared with tools/ftl_inspect).
  static uint64_t PackMeta(uint64_t lpn, uint32_t value_len, uint32_t key_len);
  static constexpr uint64_t kMetaUsed = 1ull << 63;
  static constexpr uint64_t kMetaTomb = 1ull << 62;
  static uint64_t MetaLpn(uint64_t meta) { return meta & 0x3FFFFFF; }
  static uint32_t MetaValueLen(uint64_t meta) {
    return static_cast<uint32_t>((meta >> 26) & 0xFFFFF);
  }
  static uint32_t MetaKeyLen(uint64_t meta) {
    return static_cast<uint32_t>((meta >> 46) & 0x1F);
  }
  static bool MetaLive(uint64_t meta) {
    return (meta & kMetaUsed) != 0 && (meta & kMetaTomb) == 0;
  }
  static uint32_t MetaPages(uint64_t meta) {
    return (MetaValueLen(meta) + 4095) / 4096;
  }

  KvSsd(const KvSsd&) = delete;
  KvSsd& operator=(const KvSsd&) = delete;

 private:
  struct DirEnt {
    std::array<uint8_t, kKvMaxKeyLen> key{};
    uint64_t meta = 0;
  };
  struct Shadow {
    uint64_t seq = 0;
    uint64_t lpn = 0;
    uint32_t npages = 0;
    uint32_t ppn = 0;
    uint32_t slot = 0;
  };

  // Probing. |found| gets the live slot of |key| or -1; |insert| the first
  // reusable (tombstone/empty) slot in the chain or -1 (table full).
  void Probe(std::span<const uint8_t> key, int* found, int* insert) const;
  bool KeyMatches(const DirEnt& e, std::span<const uint8_t> key) const;
  void ReleaseValue(uint64_t meta);

  // Publishes the FTL level gauges (ftl.waf, page counts, GC totals) into
  // the attached metrics engine. Gauges are integral, so ftl.waf is
  // fixed-point x1000; the exact ratio is recoverable from
  // ftl.host_pages / ftl.media_pages. No-op without metrics; handles are
  // interned once so the per-op cost is array stores.
  void PublishFtlMetrics();

  // Recorded PMR traffic (device-internal engine, qid = kFtlQid).
  void PmrStoreWc(size_t offset, std::span<const uint8_t> data);
  void PmrStoreUncached(size_t offset, std::span<const uint8_t> data);
  void PmrFence();

  uint64_t GeometryHash() const;
  void WriteSuperblock();  // direct (unrecorded); Format only
  static uint32_t ShadowCrc(std::span<const uint8_t> rec28);

  Simulator* sim_;
  SsdModel* ssd_;
  Pmr* pmr_;
  KvSsdConfig config_;
  KvPmrLayout layout_;
  BioRecorder recorder_;
  uint16_t device_id_ = 0;

  SimMutex mu_;
  std::unique_ptr<Ftl> ftl_;
  std::vector<DirEnt> dir_;
  bool attached_ = false;
  uint64_t last_seq_ = 0;
  uint64_t checkpoint_seq_ = 0;
  uint64_t media_seq_ = 1ull << 40;  // KV media events; disjoint from bios
  uint64_t live_keys_ = 0;
  uint64_t stores_ = 0;
  uint64_t retrieves_ = 0;
  uint64_t deletes_ = 0;
  std::vector<std::string> attach_errors_;

  // Interned gauge handles for PublishFtlMetrics (valid while
  // metrics_seen_ matches the simulator's current engine).
  void* metrics_seen_ = nullptr;
  uint32_t gauge_handles_[8] = {};
};

}  // namespace ccnvme

#endif  // SRC_NVME_KV_SSD_H_

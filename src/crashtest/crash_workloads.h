// Name -> workload registry, so a replay artifact can reference the
// workload it was recorded from and tools/crash_replay can reconstruct it.
#ifndef SRC_CRASHTEST_CRASH_WORKLOADS_H_
#define SRC_CRASHTEST_CRASH_WORKLOADS_H_

#include <map>
#include <string>

#include "src/crashtest/crash_state.h"

namespace ccnvme {

// All registered workloads, keyed by stable name (the paper's four Table-4
// workloads plus the beyond-paper ones).
const std::map<std::string, CrashWorkload>& CrashWorkloadRegistry();

// Looks up a workload by name; NotFound if unregistered.
Result<CrashWorkload> FindCrashWorkload(const std::string& name);

}  // namespace ccnvme

#endif  // SRC_CRASHTEST_CRASH_WORKLOADS_H_

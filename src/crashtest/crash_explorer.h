// Systematic crash-state exploration engine.
//
// Where CrashMonkey samples random crash states, the explorer visits EVERY
// consistency boundary of a recorded workload — the indices after each
// durable completion, flush submission and doorbell ring, plus the stream's
// two ends — and, per boundary, enumerates the choice space over the
// uncertain in-flight items: absent / present / torn variants. Boundaries
// whose choice space fits under |max_states_per_boundary| are enumerated
// exhaustively (mixed-radix counting); larger ones fall back to seeded
// sampling that always includes the all-absent and all-present corners.
//
// Work is distributed across a pool of worker threads, one boundary at a
// time (each crash state boots its own independent StorageStack). Results
// are merged serially in boundary order, so the report — including
// Summary() — is byte-identical regardless of thread count.
//
// On failure, the explorer can emit deterministic replay artifacts
// (replay_artifact.h) that tools/crash_replay re-checks.
#ifndef SRC_CRASHTEST_CRASH_EXPLORER_H_
#define SRC_CRASHTEST_CRASH_EXPLORER_H_

#include <string>
#include <vector>

#include "src/crashtest/crash_state.h"

namespace ccnvme {

struct ExplorerOptions {
  // Seed for torn-write masks and for sampling over-budget boundaries.
  uint64_t seed = 1;
  // Torn variants tried per uncertain item (choice radix = 2 + this).
  uint8_t torn_variants = 2;
  // A boundary whose full choice space has at most this many states is
  // enumerated exhaustively; beyond it, seeded sampling kicks in.
  size_t max_states_per_boundary = 64;
  // States sampled per over-budget boundary (includes the two corners).
  size_t samples_per_boundary = 24;
  // Worker threads. 1 = serial reference execution.
  size_t threads = 1;
  // When set, a replay artifact is written for each reported failure.
  bool emit_artifacts = false;
  std::string artifact_dir = ".";
  // Registry name of the workload (required for artifacts).
  std::string workload_name;
  // Failures kept in the report (all failures are still counted).
  size_t max_failures = 10;
};

struct ExplorerFailure {
  CrashPlan plan;
  std::string message;
  std::string artifact_path;  // empty unless emit_artifacts
};

struct ExplorerReport {
  size_t boundaries = 0;
  size_t states_checked = 0;
  size_t boundaries_exhaustive = 0;
  size_t boundaries_sampled = 0;
  size_t total_failures = 0;                // uncapped
  std::vector<ExplorerFailure> failures;    // first max_failures, in order

  bool AllPassed() const { return total_failures == 0; }
  // Deterministic multi-line description; byte-identical across runs with
  // the same recording and options regardless of options.threads.
  std::string Summary() const;
};

// The crash plans the explorer visits for one boundary, plus whether they
// cover the boundary's full choice space.
struct BoundaryPlans {
  std::vector<CrashPlan> plans;
  bool exhaustive = false;
};
BoundaryPlans PlansForBoundary(const CrashRecording& rec, size_t crash_index,
                               const ExplorerOptions& options);

// Explores every consistency boundary of |rec|.
ExplorerReport ExploreRecording(const CrashRecording& rec, const ExplorerOptions& options);

// Records the named registry workload under |config|, then explores it.
// CHECK-fails if |workload_name| is not registered.
ExplorerReport ExploreWorkload(const StackConfig& config, const std::string& workload_name,
                               ExplorerOptions options);

}  // namespace ccnvme

#endif  // SRC_CRASHTEST_CRASH_EXPLORER_H_

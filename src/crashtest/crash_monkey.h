// CrashMonkey-style bounded black-box crash testing (§7.6, Table 4).
//
// Methodology (after Mohan et al., OSDI'18):
//   1. Run a workload against a fresh file system while recording the
//      block-level stream: write submissions (with payloads), flushes, and
//      completions. The workload also registers *oracle facts* — assertions
//      that become guaranteed the moment an fsync/fatomic returns ("file X
//      exists with content hash H").
//   2. For each crash point, reconstruct the device state a power cut at
//      that moment could leave behind: writes whose durable completion was
//      observed before the crash point MUST be present; writes submitted
//      but not yet durable persist as an arbitrary subset (the device
//      completes out of order).
//   3. Boot a fresh stack from that state, mount (running journal
//      recovery), run the file-system consistency checker, and verify every
//      oracle fact registered before the crash point.
#ifndef SRC_CRASHTEST_CRASH_MONKEY_H_
#define SRC_CRASHTEST_CRASH_MONKEY_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/harness/stack.h"

namespace ccnvme {

struct OracleFact {
  enum class Kind { kFileExists, kFileAbsent, kFileContent, kDirExists };
  Kind kind = Kind::kFileExists;
  std::string path;
  uint64_t size = 0;
  uint64_t content_hash = 0;  // FNV-1a of the full file content

  static OracleFact FileExists(std::string path);
  static OracleFact FileAbsent(std::string path);
  static OracleFact DirExists(std::string path);
  // Reads the file's current content through |fs| and freezes it as a fact.
  static OracleFact FileContent(ExtFs& fs, const std::string& path);
};

// Handle the workload uses to talk to the tester.
class CrashTestContext {
 public:
  virtual ~CrashTestContext() = default;
  virtual ExtFs& fs() = 0;
  // Registers a fact that is guaranteed from this moment on (call it right
  // after the corresponding fsync/fdatasync returns).
  virtual void AddFact(const OracleFact& fact) = 0;
  // The workload is about to legally mutate |path|: its previous fact may
  // stop holding once the mutation commits, so the tester must not check it
  // until a new fact re-arms the path. Call before rename/unlink/etc.
  virtual void InvalidateFact(const std::string& path) = 0;
};

using CrashWorkload = std::function<void(CrashTestContext&)>;

struct CrashTestReport {
  int crash_points = 0;
  int passed = 0;
  std::vector<std::string> failures;  // first few failure descriptions
  bool AllPassed() const { return passed == crash_points; }
};

class CrashMonkey {
 public:
  explicit CrashMonkey(const StackConfig& config, uint64_t seed = 1234)
      : config_(config), rng_(seed) {}

  // Records the workload once, then tests |num_crash_points| crash states.
  CrashTestReport Run(const CrashWorkload& workload, int num_crash_points);

  // --- The paper's four workloads (Table 4) ------------------------------
  static CrashWorkload CreateDelete();
  static CrashWorkload Generic035();  // rename() overwrite (xfstest 035)
  static CrashWorkload Generic106();  // link()/unlink() (xfstest 106)
  static CrashWorkload Generic321();  // directory fsync (xfstest 321)

  // --- Additional workloads beyond the paper -----------------------------
  static CrashWorkload TruncateShrinkGrow();  // truncate + block reuse
  static CrashWorkload OverwriteMixed();      // in-place overwrites + appends

 public:
  struct FactEvent {
    size_t event_index = 0;
    bool invalidate = false;  // true: stop checking this path until re-armed
    OracleFact fact;
  };

 private:
  struct Recording {
    CrashImage base;               // device state before the workload
    std::vector<BioEvent> events;  // block-level stream
    std::vector<FactEvent> facts;
  };

  Recording Record(const CrashWorkload& workload);
  // Builds the media image for a crash at |crash_index| (events with index
  // < crash_index happened; durability per the recorded completions).
  CrashImage BuildCrashState(const Recording& rec, size_t crash_index);
  // Mounts the state and checks consistency + facts. Returns error text on
  // failure, empty string on success.
  std::string CheckCrashState(const Recording& rec, size_t crash_index);

  StackConfig config_;
  Rng rng_;
};

}  // namespace ccnvme

#endif  // SRC_CRASHTEST_CRASH_MONKEY_H_

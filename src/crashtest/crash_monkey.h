// CrashMonkey-style bounded black-box crash testing (§7.6, Table 4).
//
// Methodology (after Mohan et al., OSDI'18):
//   1. Run a workload against a fresh file system while recording the
//      block-level stream: write submissions (with payloads), flushes,
//      completions, and the ccNVMe driver's PMR traffic. The workload also
//      registers *oracle facts* — assertions that become guaranteed the
//      moment an fsync/fatomic returns ("file X exists with content H").
//   2. For each crash point, reconstruct a device state a power cut at
//      that moment could leave behind (src/crashtest/crash_state.h):
//      durable writes are present, doorbell-gated transactional writes and
//      in-flight requests persist as a random choice per item — absent,
//      present, or torn at sector/MMIO-word granularity.
//   3. Boot a fresh stack from that state, mount (running journal
//      recovery), run the file-system consistency checker, and verify
//      every oracle fact registered before the crash point.
//
// CrashMonkey samples random crash states; its systematic sibling
// (src/crashtest/crash_explorer.h) enumerates them.
#ifndef SRC_CRASHTEST_CRASH_MONKEY_H_
#define SRC_CRASHTEST_CRASH_MONKEY_H_

#include <string>
#include <vector>

#include "src/crashtest/crash_state.h"

namespace ccnvme {

struct CrashTestReport {
  int crash_points = 0;
  int passed = 0;
  std::vector<std::string> failures;  // first few failure descriptions
  bool AllPassed() const { return passed == crash_points; }
};

class CrashMonkey {
 public:
  explicit CrashMonkey(const StackConfig& config, uint64_t seed = 1234)
      : config_(config), seed_(seed), rng_(seed) {}

  // Records the workload once, then tests |num_crash_points| random crash
  // states (random crash index, random choice per uncertain item).
  CrashTestReport Run(const CrashWorkload& workload, int num_crash_points);

  // --- The paper's four workloads (Table 4) ------------------------------
  static CrashWorkload CreateDelete();
  static CrashWorkload Generic035();  // rename() overwrite (xfstest 035)
  static CrashWorkload Generic106();  // link()/unlink() (xfstest 106)
  static CrashWorkload Generic321();  // directory fsync (xfstest 321)

  // --- Additional workloads beyond the paper -----------------------------
  static CrashWorkload TruncateShrinkGrow();  // truncate + block reuse
  static CrashWorkload OverwriteMixed();      // in-place overwrites + appends
  // fatomic multi-block overwrite: registers a ContentOneOf fact, so every
  // crash state must show the old content or the new one, never a mix.
  // Requires a data-journaling MQFS config for true data atomicity.
  static CrashWorkload AtomicOverwrite();

  // --- NVLog (NVM write-ahead log) workloads ------------------------------
  // Appends + fsyncs over the NVLog stack: every fsync's durability point is
  // an NVM flush+fence, and crash cuts land inside the absorb-then-drain
  // window — after the fence (fact armed, entry undrained) but before or in
  // the middle of the background checkpoint to the block stack.
  static CrashWorkload NvlogAppends();
  // Repeated in-place overwrites of one block region, fsynced each round:
  // several log entries covering the SAME home block queue up undrained, so
  // drain-batch coalescing and in-order replay decide which content wins.
  static CrashWorkload NvlogOverwriteChurn();

  // --- KV-native (KV-SSD) workloads ---------------------------------------
  // Keys stored, one overwritten, one deleted through the NVMe KV command
  // set (config.kv.enabled stacks). Before each Store/Delete returns the
  // key's fact is a KvOneOf(old, new) — the device-side map+data commit
  // window the explorer cuts through; after the ack the exact value is
  // guaranteed (completion = durability, no host flush).
  static CrashWorkload KvPutGet();
  // One key overwritten repeatedly with multi-page values: every round
  // frees the previous flash run, so small-geometry configs run GC
  // mid-stream and crash cuts land inside migrate/checkpoint/erase.
  static CrashWorkload KvOverwriteChurn();

  // --- Multi-core workloads ----------------------------------------------
  // Two cores append+fsync their own files concurrently (SpawnOnCore), so
  // the recorded stream interleaves both queues' traffic and crash cuts
  // land between one core's commit and the other's in-flight writes.
  static CrashWorkload MultiCoreAppends();
  // Two cores overwrite disjoint regions of ONE shared file and fsync it
  // concurrently: cross-core group commit (leader/follower aggregation).
  // Each core arms a FileRegion fact the moment its own fsync returns —
  // exactly the guarantee the test_skip_cross_core_order bug breaks.
  static CrashWorkload MultiCoreSharedFsync();

 private:
  StackConfig config_;
  uint64_t seed_;
  Rng rng_;
};

}  // namespace ccnvme

#endif  // SRC_CRASHTEST_CRASH_MONKEY_H_

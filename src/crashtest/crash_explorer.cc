#include "src/crashtest/crash_explorer.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "src/common/logging.h"
#include "src/crashtest/crash_workloads.h"
#include "src/crashtest/replay_artifact.h"

namespace ccnvme {
namespace {

// Results for one boundary, filled by whichever worker claimed it and
// merged in boundary order afterwards.
struct BoundarySlot {
  size_t checked = 0;
  bool exhaustive = false;
  std::vector<ExplorerFailure> failures;
};

void ExploreBoundary(const CrashRecording& rec, size_t crash_index,
                     const ExplorerOptions& options, BoundarySlot& slot) {
  BoundaryPlans bp = PlansForBoundary(rec, crash_index, options);
  slot.exhaustive = bp.exhaustive;
  for (CrashPlan& plan : bp.plans) {
    std::string failure = CheckCrashState(rec, plan, options.seed);
    ++slot.checked;
    if (!failure.empty()) {
      slot.failures.push_back({std::move(plan), std::move(failure), ""});
    }
  }
}

}  // namespace

BoundaryPlans PlansForBoundary(const CrashRecording& rec, size_t crash_index,
                               const ExplorerOptions& options) {
  const std::vector<UncertainItem> items = CollectUncertain(rec, crash_index);
  const uint64_t radix = kChoiceTornBase + options.torn_variants;

  // Size of the full choice space, with overflow guard: once the running
  // product exceeds the budget the exact value no longer matters.
  uint64_t total = 1;
  for (size_t i = 0; i < items.size() && total <= options.max_states_per_boundary; ++i) {
    total *= radix;
  }

  BoundaryPlans out;
  if (total <= options.max_states_per_boundary) {
    out.exhaustive = true;
    out.plans.reserve(total);
    for (uint64_t code = 0; code < total; ++code) {
      CrashPlan plan;
      plan.crash_index = crash_index;
      plan.choices.resize(items.size());
      uint64_t c = code;
      for (size_t i = 0; i < items.size(); ++i) {
        plan.choices[i] = static_cast<uint8_t>(c % radix);
        c /= radix;
      }
      out.plans.push_back(std::move(plan));
    }
    return out;
  }

  // Over budget: the two corner states (nothing in-flight persisted /
  // everything persisted untorn), then seeded random fill.
  out.exhaustive = false;
  CrashPlan corner;
  corner.crash_index = crash_index;
  corner.choices.assign(items.size(), kChoiceAbsent);
  out.plans.push_back(corner);
  corner.choices.assign(items.size(), kChoicePresent);
  out.plans.push_back(std::move(corner));
  Rng rng(options.seed ^ (0x9e3779b97f4a7c15ull * (crash_index + 1)));
  while (out.plans.size() < std::max<size_t>(options.samples_per_boundary, 2)) {
    CrashPlan plan;
    plan.crash_index = crash_index;
    plan.choices.resize(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      plan.choices[i] = static_cast<uint8_t>(rng.Uniform(radix));
    }
    out.plans.push_back(std::move(plan));
  }
  return out;
}

ExplorerReport ExploreRecording(const CrashRecording& rec, const ExplorerOptions& options) {
  const std::vector<size_t> boundaries = ConsistencyBoundaries(rec.events);
  std::vector<BoundarySlot> slots(boundaries.size());

  const size_t threads = std::max<size_t>(options.threads, 1);
  if (threads == 1) {
    for (size_t i = 0; i < boundaries.size(); ++i) {
      ExploreBoundary(rec, boundaries[i], options, slots[i]);
    }
  } else {
    std::atomic<size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= boundaries.size()) {
          return;
        }
        ExploreBoundary(rec, boundaries[i], options, slots[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  // Serial merge in boundary order: the report is independent of how the
  // boundaries were distributed over workers.
  ExplorerReport report;
  report.boundaries = boundaries.size();
  for (BoundarySlot& slot : slots) {
    report.states_checked += slot.checked;
    if (slot.exhaustive) {
      ++report.boundaries_exhaustive;
    } else {
      ++report.boundaries_sampled;
    }
    for (ExplorerFailure& f : slot.failures) {
      ++report.total_failures;
      if (report.failures.size() >= options.max_failures) {
        continue;
      }
      if (options.emit_artifacts) {
        ReplayArtifact art;
        art.workload = options.workload_name;
        art.config = rec.config;
        art.torn_seed = options.seed;
        art.plan = f.plan;
        art.failure = f.message;
        art.flight_recorder = rec.trace_tail;
        std::ostringstream path;
        path << options.artifact_dir << "/crash_artifact_" << options.workload_name << "_"
             << f.plan.crash_index << "_" << report.failures.size() << ".json";
        const Status st = art.WriteFile(path.str());
        if (st.ok()) {
          f.artifact_path = path.str();
        }
      }
      report.failures.push_back(std::move(f));
    }
  }
  return report;
}

ExplorerReport ExploreWorkload(const StackConfig& config, const std::string& workload_name,
                               ExplorerOptions options) {
  options.workload_name = workload_name;
  Result<CrashWorkload> workload = FindCrashWorkload(workload_name);
  CCNVME_CHECK(workload.ok()) << workload.status().ToString();
  const CrashRecording rec = RecordWorkload(config, *workload);
  return ExploreRecording(rec, options);
}

std::string ExplorerReport::Summary() const {
  std::ostringstream out;
  out << "boundaries=" << boundaries << " (exhaustive=" << boundaries_exhaustive
      << " sampled=" << boundaries_sampled << ") states=" << states_checked
      << " failures=" << total_failures << "\n";
  for (const ExplorerFailure& f : failures) {
    out << "  crash@" << f.plan.crash_index << " choices=[";
    for (size_t i = 0; i < f.plan.choices.size(); ++i) {
      out << (i == 0 ? "" : ",") << static_cast<uint32_t>(f.plan.choices[i]);
    }
    out << "]: " << f.message << "\n";
  }
  return out.str();
}

}  // namespace ccnvme

// Deterministic replay artifact for crash-explorer failures.
//
// When the explorer finds a crash state that fails recovery or violates an
// oracle fact, it serializes everything needed to rebuild that exact state
// to a flat JSON file: the workload name (resolved through the workload
// registry), the stack configuration (the SSD encoded by preset name), the
// torn-write seed, and the crash plan (crash index + per-item choices).
// Since the simulator is deterministic, re-recording the workload yields
// the identical event stream, and (plan, seed) then reconstruct the
// identical device image — tools/crash_replay re-checks it and must
// reproduce the same failure string.
#ifndef SRC_CRASHTEST_REPLAY_ARTIFACT_H_
#define SRC_CRASHTEST_REPLAY_ARTIFACT_H_

#include <string>
#include <vector>

#include "src/crashtest/crash_state.h"

namespace ccnvme {

struct ReplayArtifact {
  std::string workload;  // registry name (src/crashtest/crash_workloads.h)
  StackConfig config;
  uint64_t torn_seed = 0;
  CrashPlan plan;
  std::string failure;  // the failure string observed at record time
  // Flight recorder: formatted trace-tail lines from the recorded run
  // (what the stack was doing just before the simulated crash). Optional —
  // absent in artifacts written before the field existed.
  std::vector<std::string> flight_recorder;

  std::string ToJson() const;
  static Result<ReplayArtifact> FromJson(const std::string& json);

  Status WriteFile(const std::string& path) const;
  static Result<ReplayArtifact> ReadFile(const std::string& path);
};

// Re-records the artifact's workload and re-checks its exact crash state.
// Returns the (possibly empty) failure string of the replayed check. When
// |metrics_json| is non-null the invariant monitors watch the replayed
// recovery and a metrics JSON snapshot is stored there (see src/metrics).
Result<std::string> ReplayArtifactCheck(const ReplayArtifact& artifact,
                                        std::string* metrics_json = nullptr);

}  // namespace ccnvme

#endif  // SRC_CRASHTEST_REPLAY_ARTIFACT_H_

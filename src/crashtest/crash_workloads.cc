#include "src/crashtest/crash_workloads.h"

#include "src/crashtest/crash_monkey.h"

namespace ccnvme {

const std::map<std::string, CrashWorkload>& CrashWorkloadRegistry() {
  static const std::map<std::string, CrashWorkload>* const kRegistry =
      new std::map<std::string, CrashWorkload>{
          {"create_delete", CrashMonkey::CreateDelete()},
          {"generic_035", CrashMonkey::Generic035()},
          {"generic_106", CrashMonkey::Generic106()},
          {"generic_321", CrashMonkey::Generic321()},
          {"truncate_shrink_grow", CrashMonkey::TruncateShrinkGrow()},
          {"overwrite_mixed", CrashMonkey::OverwriteMixed()},
          {"atomic_overwrite", CrashMonkey::AtomicOverwrite()},
          {"nvlog_appends", CrashMonkey::NvlogAppends()},
          {"nvlog_overwrite_churn", CrashMonkey::NvlogOverwriteChurn()},
          {"multicore_appends", CrashMonkey::MultiCoreAppends()},
          {"multicore_shared_fsync", CrashMonkey::MultiCoreSharedFsync()},
          {"kv_put_get", CrashMonkey::KvPutGet()},
          {"kv_overwrite_churn", CrashMonkey::KvOverwriteChurn()},
      };
  return *kRegistry;
}

Result<CrashWorkload> FindCrashWorkload(const std::string& name) {
  const auto& reg = CrashWorkloadRegistry();
  auto it = reg.find(name);
  if (it == reg.end()) {
    return NotFound("unknown crash workload: " + name);
  }
  return it->second;
}

}  // namespace ccnvme

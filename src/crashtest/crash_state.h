// Shared crash-state model for the crash testers.
//
// A workload runs once against a fresh stack while a recorder captures the
// unified event stream of all persistence domains (src/block/bio_event.h):
// media bios with their durable completions, the ccNVMe driver's PMR
// traffic (SQE stores, persistence fences, doorbell rings, P-SQ-head
// advances), and the NVM tier's stores and persist barriers. From that
// recording, any power-cut state is a pure function of
//
//   * a crash index C — the cut falls between events C-1 and C, and
//   * a choice vector — one entry per item whose persistence the cut
//     leaves uncertain: absent, fully present, or TORN (a deterministic
//     sub-unit subset: 512-byte sectors for media blocks, 8-byte MMIO
//     words for PMR stores, 8-byte words for NVM stores).
//
// The model is transaction-aware: a REQ_TX write can reach media only if
// its transaction's doorbell precedes the cut (the controller fetches
// commands only after their doorbell), and is guaranteed durable once its
// transaction's in-order completion — the P-SQ-head advance — precedes it.
//
// CrashMonkey (random sampling) and CrashExplorer (systematic enumeration)
// are both thin drivers over these functions.
#ifndef SRC_CRASHTEST_CRASH_STATE_H_
#define SRC_CRASHTEST_CRASH_STATE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/harness/stack.h"

namespace ccnvme {

struct OracleFact {
  enum class Kind {
    kFileExists,
    kFileAbsent,
    kFileContent,
    kDirExists,
    // fatomic/fdataatomic atomicity: the file's content is EITHER
    // (size, content_hash) OR (alt_size, alt_content_hash) — all-or-nothing,
    // never a mix of the two versions.
    kFileContentOneOf,
    // A byte range [offset, offset+size) of the file. Region facts for the
    // same path coexist (keyed by path@offset), so concurrent workload
    // actors can each arm a fact about their own exclusive region the
    // moment their fsync returns, while other actors keep mutating theirs.
    kFileRegion,
    // KV-native stacks (config.kv.enabled): |path| holds the key. kKvValue
    // freezes (size, content_hash) of the value; kKvAbsent asserts the key
    // does not exist; kKvValueOneOf allows either of two versions (a KV
    // Store/Delete in flight) — an absent version is encoded as size ==
    // ~0ull, so "old value or deleted" windows are expressible too.
    kKvValue,
    kKvAbsent,
    kKvValueOneOf,
  };
  Kind kind = Kind::kFileExists;
  std::string path;
  uint64_t size = 0;
  uint64_t content_hash = 0;  // FNV-1a of the full file content (or region)
  uint64_t alt_size = 0;      // kFileContentOneOf only
  uint64_t alt_content_hash = 0;
  uint64_t offset = 0;  // kFileRegion only

  static OracleFact FileExists(std::string path);
  static OracleFact FileAbsent(std::string path);
  static OracleFact DirExists(std::string path);
  // Reads the file's current content through |fs| and freezes it as a fact.
  static OracleFact FileContent(ExtFs& fs, const std::string& path);
  // |before| and |after| must be kFileContent facts for the same path.
  static OracleFact ContentOneOf(const OracleFact& before, const OracleFact& after);
  // Freezes the current bytes of [offset, offset+length) of the file.
  static OracleFact FileRegion(ExtFs& fs, const std::string& path, uint64_t offset,
                               uint64_t length);

  // KV-native facts. |KvOneOf|'s operands must be kKvValue or kKvAbsent
  // facts for the same key.
  static OracleFact KvValue(std::string key, std::span<const uint8_t> value);
  static OracleFact KvValue(std::string key, std::string_view value);
  static OracleFact KvAbsent(std::string key);
  static OracleFact KvOneOf(const OracleFact& before, const OracleFact& after);
};

// kKvValueOneOf encoding of "this version is the key being absent".
inline constexpr uint64_t kKvSizeAbsent = ~0ull;

std::string DescribeFact(const OracleFact& f);

// Handle the workload uses to talk to the tester.
class CrashTestContext {
 public:
  virtual ~CrashTestContext() = default;
  virtual ExtFs& fs() = 0;
  // The KV-native driver of a config.kv.enabled stack (CHECK-fails on
  // block-path stacks).
  virtual KvNvmeDriver& kv() = 0;
  // Registers a fact that is guaranteed from this moment on (call it right
  // after the corresponding fsync/fdatasync returns).
  virtual void AddFact(const OracleFact& fact) = 0;
  // The workload is about to legally mutate |path|: its previous fact may
  // stop holding once the mutation commits, so the tester must not check it
  // until a new fact re-arms the path. Call before rename/unlink/etc.
  // Disarms the path's whole-file fact AND all of its region facts.
  virtual void InvalidateFact(const std::string& path) = 0;
  // Spawns |body| as a concurrent workload actor bound to simulated core
  // |core| — its I/O is issued on hardware queue core % num_queues, so two
  // spawned bodies on different cores interleave in virtual time exactly
  // like two host CPUs. AddFact/InvalidateFact are safe from any actor.
  virtual void SpawnOnCore(uint16_t core, std::function<void()> body) = 0;
  // Blocks the calling actor until every spawned body has returned.
  virtual void Join() = 0;
};

using CrashWorkload = std::function<void(CrashTestContext&)>;

struct FactEvent {
  size_t event_index = 0;
  bool invalidate = false;  // true: stop checking this path until re-armed
  OracleFact fact;
};

struct CrashRecording {
  StackConfig config;
  CrashImage base;               // device state before the workload
  std::vector<BioEvent> events;  // unified media + PMR stream
  std::vector<FactEvent> facts;
  // Flight recorder: the tail of the cross-layer trace at the end of the
  // recorded run (human-readable lines). Stored into failing artifacts so a
  // replayed failure shows what the stack was doing when it crashed.
  std::vector<std::string> trace_tail;
};

// Runs |workload| once against a fresh stack built from |config| and
// records the full event stream plus the oracle facts.
CrashRecording RecordWorkload(const StackConfig& config, const CrashWorkload& workload);

// Consistency boundaries: the crash indices where the set of guaranteed-
// durable state changes — {0}, the index after every durable completion
// (kComplete), flush submission (kFlush), doorbell ring (kPmrDoorbell) and
// NVM persist barrier (kNvmFence), and {events.size()}. A crash anywhere between two adjacent boundaries
// differs only in its uncertain-item set, which the choice vector covers.
std::vector<size_t> ConsistencyBoundaries(const std::vector<BioEvent>& events);

// One item whose persistence a crash at the given index leaves uncertain.
struct UncertainItem {
  size_t event_index = 0;  // the kWrite (media), kPmrWrite (PMR) or
                           // kNvmWrite (NVM tier) event
  uint32_t block = 0;      // 4 KB block within a multi-block media write
  bool is_pmr = false;
  bool is_nvm = false;
};

// Choice encoding: 0 = absent, 1 = fully present, 2+t = torn variant t.
inline constexpr uint8_t kChoiceAbsent = 0;
inline constexpr uint8_t kChoicePresent = 1;
inline constexpr uint8_t kChoiceTornBase = 2;

// A fully-determined crash state: cut position + one choice per uncertain
// item (parallel to CollectUncertain's order). An empty/short choice vector
// defaults the remaining items to kChoiceAbsent.
struct CrashPlan {
  size_t crash_index = 0;
  std::vector<uint8_t> choices;
};

// The uncertain items for a crash at |crash_index|, in a deterministic
// order (event order, then block order).
std::vector<UncertainItem> CollectUncertain(const CrashRecording& rec, size_t crash_index);

// Deterministic survivor mask for torn variant |variant| of an item:
// bit u set = sub-unit u (sector or MMIO word) of the |units|-unit payload
// persisted. Always a strict non-empty subset, so a torn choice is never
// equivalent to absent or present.
uint64_t TornMask(uint64_t torn_seed, const UncertainItem& item, uint8_t variant, size_t units);

// Reconstructs the durable bytes (media + PMR) the plan's power cut leaves
// behind. Pure function of (recording, plan, torn_seed).
CrashImage BuildCrashState(const CrashRecording& rec, const CrashPlan& plan,
                           uint64_t torn_seed);

// Boots a stack from the plan's crash state, mounts (running recovery),
// runs the FS consistency check and verifies every oracle fact armed
// before the cut. Returns the failure description, or "" on success.
// When |metrics_json| is non-null the invariant monitors (src/metrics)
// watch the recovery and a full metrics JSON snapshot is stored there.
std::string CheckCrashState(const CrashRecording& rec, const CrashPlan& plan,
                            uint64_t torn_seed, std::string* metrics_json = nullptr);

}  // namespace ccnvme

#endif  // SRC_CRASHTEST_CRASH_STATE_H_

#include "src/crashtest/crash_state.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/logging.h"
#include "src/metrics/export.h"
#include "src/nvm/nvm_device.h"
#include "src/nvme/pmr.h"
#include "src/sim/sync.h"

namespace ccnvme {

OracleFact OracleFact::FileExists(std::string path) {
  OracleFact f;
  f.kind = Kind::kFileExists;
  f.path = std::move(path);
  return f;
}

OracleFact OracleFact::FileAbsent(std::string path) {
  OracleFact f;
  f.kind = Kind::kFileAbsent;
  f.path = std::move(path);
  return f;
}

OracleFact OracleFact::DirExists(std::string path) {
  OracleFact f;
  f.kind = Kind::kDirExists;
  f.path = std::move(path);
  return f;
}

OracleFact OracleFact::FileContent(ExtFs& fs, const std::string& path) {
  OracleFact f;
  f.kind = Kind::kFileContent;
  f.path = path;
  auto ino = fs.Lookup(path);
  CCNVME_CHECK(ino.ok()) << "FileContent fact for missing " << path;
  auto size = fs.FileSize(*ino);
  CCNVME_CHECK(size.ok());
  f.size = *size;
  Buffer content(f.size);
  if (f.size > 0) {
    Status st = fs.Read(*ino, 0, content);
    CCNVME_CHECK(st.ok());
  }
  f.content_hash = Fnv1a(content);
  return f;
}

OracleFact OracleFact::ContentOneOf(const OracleFact& before, const OracleFact& after) {
  CCNVME_CHECK(before.kind == Kind::kFileContent && after.kind == Kind::kFileContent);
  CCNVME_CHECK(before.path == after.path);
  OracleFact f;
  f.kind = Kind::kFileContentOneOf;
  f.path = before.path;
  f.size = before.size;
  f.content_hash = before.content_hash;
  f.alt_size = after.size;
  f.alt_content_hash = after.content_hash;
  return f;
}

OracleFact OracleFact::FileRegion(ExtFs& fs, const std::string& path, uint64_t offset,
                                  uint64_t length) {
  OracleFact f;
  f.kind = Kind::kFileRegion;
  f.path = path;
  f.offset = offset;
  f.size = length;
  auto ino = fs.Lookup(path);
  CCNVME_CHECK(ino.ok()) << "FileRegion fact for missing " << path;
  Buffer content(length);
  if (length > 0) {
    Status st = fs.Read(*ino, offset, content);
    CCNVME_CHECK(st.ok());
  }
  f.content_hash = Fnv1a(content);
  return f;
}

OracleFact OracleFact::KvValue(std::string key, std::span<const uint8_t> value) {
  OracleFact f;
  f.kind = Kind::kKvValue;
  f.path = std::move(key);
  f.size = value.size();
  f.content_hash = Fnv1a(value);
  return f;
}

OracleFact OracleFact::KvValue(std::string key, std::string_view value) {
  return KvValue(std::move(key),
                 std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(value.data()),
                                          value.size()));
}

OracleFact OracleFact::KvAbsent(std::string key) {
  OracleFact f;
  f.kind = Kind::kKvAbsent;
  f.path = std::move(key);
  f.size = kKvSizeAbsent;
  return f;
}

OracleFact OracleFact::KvOneOf(const OracleFact& before, const OracleFact& after) {
  CCNVME_CHECK(before.kind == Kind::kKvValue || before.kind == Kind::kKvAbsent);
  CCNVME_CHECK(after.kind == Kind::kKvValue || after.kind == Kind::kKvAbsent);
  CCNVME_CHECK(before.path == after.path);
  OracleFact f;
  f.kind = Kind::kKvValueOneOf;
  f.path = before.path;
  f.size = before.size;
  f.content_hash = before.content_hash;
  f.alt_size = after.size;
  f.alt_content_hash = after.content_hash;
  return f;
}

std::string DescribeFact(const OracleFact& f) {
  switch (f.kind) {
    case OracleFact::Kind::kFileExists:
      return "exists(" + f.path + ")";
    case OracleFact::Kind::kFileAbsent:
      return "absent(" + f.path + ")";
    case OracleFact::Kind::kDirExists:
      return "dir(" + f.path + ")";
    case OracleFact::Kind::kFileContent:
      return "content(" + f.path + ", size=" + std::to_string(f.size) + ")";
    case OracleFact::Kind::kFileContentOneOf:
      return "one-of(" + f.path + ", sizes=" + std::to_string(f.size) + "|" +
             std::to_string(f.alt_size) + ")";
    case OracleFact::Kind::kFileRegion:
      return "region(" + f.path + ", off=" + std::to_string(f.offset) +
             ", len=" + std::to_string(f.size) + ")";
    case OracleFact::Kind::kKvValue:
      return "kv(" + f.path + ", size=" + std::to_string(f.size) + ")";
    case OracleFact::Kind::kKvAbsent:
      return "kv-absent(" + f.path + ")";
    case OracleFact::Kind::kKvValueOneOf: {
      auto v = [](uint64_t s) {
        return s == kKvSizeAbsent ? std::string("absent") : std::to_string(s);
      };
      return "kv-one-of(" + f.path + ", sizes=" + v(f.size) + "|" + v(f.alt_size) + ")";
    }
  }
  return "?";
}

namespace {

inline constexpr size_t kSectorSize = 512;
inline constexpr size_t kSectorsPerBlock = kFsBlockSize / kSectorSize;

class ContextImpl : public CrashTestContext {
 public:
  ContextImpl(StorageStack& stack, std::vector<FactEvent>* facts,
              const std::vector<BioEvent>* events)
      : stack_(stack),
        facts_(facts),
        events_(events),
        live_mu_(&stack.sim()),
        live_cv_(&stack.sim()) {}

  ExtFs& fs() override { return stack_.fs(); }
  KvNvmeDriver& kv() override {
    CCNVME_CHECK(stack_.kv_driver() != nullptr) << "stack built without config.kv.enabled";
    return *stack_.kv_driver();
  }
  void AddFact(const OracleFact& fact) override {
    facts_->push_back({events_->size(), false, fact});
  }
  void InvalidateFact(const std::string& path) override {
    OracleFact f;
    f.path = path;
    facts_->push_back({events_->size(), true, f});
  }
  void SpawnOnCore(uint16_t core, std::function<void()> body) override {
    live_++;
    const uint16_t queue =
        static_cast<uint16_t>(core % stack_.config().num_queues);
    stack_.Spawn("wl.core" + std::to_string(core) + "." + std::to_string(spawned_++),
                 [this, body = std::move(body)] {
                   body();
                   live_mu_.Lock();
                   live_--;
                   live_mu_.Unlock();
                   live_cv_.NotifyAll();
                 },
                 queue);
  }
  void Join() override {
    live_mu_.Lock();
    while (live_ > 0) {
      live_cv_.Wait(live_mu_);
    }
    live_mu_.Unlock();
  }

 private:
  StorageStack& stack_;
  std::vector<FactEvent>* facts_;
  const std::vector<BioEvent>* events_;
  SimMutex live_mu_;
  SimCondVar live_cv_;
  uint32_t live_ = 0;
  uint32_t spawned_ = 0;
};

// Persistence classification of a recorded event under a crash at a given
// index: guaranteed gone, guaranteed present, or up to the device.
enum class WState : uint8_t { kAbsent, kDurable, kUncertain };

// Classifies every kWrite and every WC kPmrWrite in the prefix
// [0, crash_index). Entries for other events stay kAbsent (unused).
std::vector<WState> Classify(const CrashRecording& rec, size_t crash_index) {
  const auto& events = rec.events;
  const size_t n = std::min(crash_index, events.size());
  std::vector<WState> state(events.size(), WState::kAbsent);

  const bool plp =
      rec.config.ssd.power_loss_protection || !rec.config.ssd.volatile_cache;

  // First pass: index the prefix. Everything device-related is keyed by
  // the member device: each device of a multi-device volume has its own
  // write cache, PMR and queues, so a flush, fence, doorbell or head
  // advance on one member says nothing about the others.
  std::map<uint64_t, size_t> submit_at;  // media seq -> submit event index
  std::set<uint64_t> flush_seqs;
  std::map<uint64_t, size_t> complete_at;  // media seq -> completion index
  // Per-device completion indices of flushes.
  std::map<uint16_t, std::vector<size_t>> flush_complete_at;
  // (index, device, tx_id) of every P-SQDB ring.
  std::vector<std::tuple<size_t, uint16_t, uint64_t>> doorbells;
  // (device, tx_id) pairs whose P-SQ-head advance landed.
  std::set<std::pair<uint16_t, uint64_t>> head_advanced_txs;
  std::map<std::pair<uint16_t, uint16_t>, std::vector<size_t>> fences_by_dev_qid;
  // NVM persist barriers are global (one cache domain per NVM tier), so a
  // sorted index list suffices.
  std::vector<size_t> nvm_fences;
  for (size_t i = 0; i < n; ++i) {
    const BioEvent& ev = events[i];
    switch (ev.op) {
      case BioOp::kWrite:
        submit_at[ev.seq] = i;
        break;
      case BioOp::kFlush:
        flush_seqs.insert(ev.seq);
        break;
      case BioOp::kComplete:
        if (flush_seqs.count(ev.seq) != 0) {
          flush_complete_at[ev.device].push_back(i);
        } else {
          complete_at[ev.seq] = i;
        }
        break;
      case BioOp::kPmrDoorbell:
        doorbells.emplace_back(i, ev.device, ev.tx_id);
        break;
      case BioOp::kPmrWrite:
        if ((ev.flags & kBioPmrWc) == 0) {
          // The only uncached PMR data stores the driver emits are P-SQ-head
          // advances, the persistent completion record of a transaction.
          head_advanced_txs.emplace(ev.device, ev.tx_id);
        }
        break;
      case BioOp::kPmrFence:
        fences_by_dev_qid[{ev.device, ev.qid}].push_back(i);
        break;
      case BioOp::kNvmFence:
        nvm_fences.push_back(i);
        break;
      default:
        break;
    }
  }

  // Second pass: classify.
  for (size_t i = 0; i < n; ++i) {
    const BioEvent& ev = events[i];
    if (ev.op == BioOp::kWrite) {
      const auto cit = complete_at.find(ev.seq);
      const bool completed = cit != complete_at.end();
      if ((ev.flags & kBioTx) != 0) {
        // ccNVMe transactional write. The controller fetches it only after
        // its transaction's doorbell ON ITS OWN DEVICE, so without one
        // before the cut it cannot have touched media. It is guaranteed
        // durable once that device's in-order completion (P-SQ-head
        // advance, or the durable-completion record) precedes the cut.
        const bool durable =
            completed || head_advanced_txs.count({ev.device, ev.tx_id}) != 0;
        if (durable) {
          state[i] = WState::kDurable;
          continue;
        }
        bool doorbelled = false;
        for (const auto& [di, dev, tx] : doorbells) {
          if (di > i && dev == ev.device && tx == ev.tx_id) {
            doorbelled = true;
            break;
          }
        }
        state[i] = doorbelled ? WState::kUncertain : WState::kAbsent;
      } else {
        // Stock path: eligible from submission (the device may execute it
        // any time). Durable per the cache model; only flushes on the same
        // member device drain this write's cache.
        bool durable = false;
        if (completed) {
          if (plp || (ev.flags & kBioFua) != 0) {
            durable = true;
          } else if (auto fit = flush_complete_at.find(ev.device);
                     fit != flush_complete_at.end()) {
            for (size_t fc : fit->second) {
              if (fc > cit->second) {
                durable = true;
                break;
              }
            }
          }
        }
        state[i] = durable ? WState::kDurable : WState::kUncertain;
      }
    } else if (ev.op == BioOp::kPmrWrite) {
      if ((ev.flags & kBioPmrWc) == 0) {
        state[i] = WState::kDurable;  // uncached store: durable immediately
        continue;
      }
      // WC-buffered SQE store: persistent once a fence on its device+queue
      // follows; otherwise any word subset may have landed.
      bool fenced = false;
      auto fit = fences_by_dev_qid.find({ev.device, ev.qid});
      if (fit != fences_by_dev_qid.end()) {
        for (size_t fi : fit->second) {
          if (fi > i) {
            fenced = true;
            break;
          }
        }
      }
      state[i] = fenced ? WState::kDurable : WState::kUncertain;
    } else if (ev.op == BioOp::kNvmWrite) {
      // NVM store: persistent once any later flush+fence barrier precedes
      // the cut (clwb+sfence drains the whole cache domain); otherwise any
      // 8-byte-word subset may have landed.
      const bool fenced = !nvm_fences.empty() && nvm_fences.back() > i;
      state[i] = fenced ? WState::kDurable : WState::kUncertain;
    }
  }
  return state;
}

size_t MediaBlocks(const BioEvent& ev) {
  return ev.data.empty() ? 0 : (ev.data.size() + kFsBlockSize - 1) / kFsBlockSize;
}

}  // namespace

CrashRecording RecordWorkload(const StackConfig& config, const CrashWorkload& workload) {
  CrashRecording rec;
  rec.config = config;
  StorageStack stack(config);
  // Small ring: the flight recorder only needs the last moments before the
  // (simulated) crash. Tracing never perturbs virtual time, so recordings
  // are identical with or without it.
  Tracer& tracer = stack.EnableTracing(/*ring_capacity=*/512);
  Status st = config.kv.enabled ? stack.KvFormat() : stack.MkfsAndMount();
  CCNVME_CHECK(st.ok()) << st.ToString();
  rec.base = stack.CaptureCrashImage();

  stack.SetRecorder([&rec](const BioEvent& ev) { rec.events.push_back(ev); });
  ContextImpl ctx(stack, &rec.facts, &rec.events);
  stack.Run([&] { workload(ctx); });
  rec.trace_tail = tracer.FormatTail(32);
  return rec;
}

std::vector<size_t> ConsistencyBoundaries(const std::vector<BioEvent>& events) {
  std::vector<size_t> out;
  out.push_back(0);
  for (size_t i = 0; i < events.size(); ++i) {
    const BioOp op = events[i].op;
    if (op == BioOp::kComplete || op == BioOp::kFlush || op == BioOp::kPmrDoorbell ||
        op == BioOp::kNvmFence) {
      out.push_back(i + 1);
    } else if (op == BioOp::kPmrFence && events[i].qid == kFtlQid) {
      // KV-path persist fence: the device-internal ARM/COMMIT fences of the
      // KV Store protocol move the preceding WC stores (shadow map-entry,
      // directory meta word) from uncertain to durable — exactly the
      // boundaries that bracket the map+data atomicity window.
      out.push_back(i + 1);
    } else if (op == BioOp::kPmrWrite && events[i].qid == kFtlQid &&
               (events[i].flags & kBioPmrWc) != 0) {
      // Cut INSIDE the KV commit window, right after each WC store and
      // before its fence: here the key bytes, the shadow map-entry and the
      // directory meta word are uncertain items, so the explorer enumerates
      // their absent/present/torn combinations — the map+data atomicity
      // window itself, not just its fenced edges.
      out.push_back(i + 1);
    } else if (op == BioOp::kPmrWrite && (events[i].flags & kBioPmrWc) == 0) {
      // An uncached P-SQ-head advance moves a transaction OUT of its
      // device's in-doubt window, changing what recovery trusts — a real
      // boundary on multi-device volumes, where other members' doorbells
      // may still be pending. On a single device the advance is followed
      // immediately by the transaction's durable-completion records, so
      // the boundary is only emitted when the next event is not already a
      // boundary op (keeping single-device state counts unchanged).
      const bool next_is_boundary =
          i + 1 < events.size() &&
          (events[i + 1].op == BioOp::kComplete || events[i + 1].op == BioOp::kFlush ||
           events[i + 1].op == BioOp::kPmrDoorbell);
      if (!next_is_boundary) {
        out.push_back(i + 1);
      }
    }
  }
  if (out.back() != events.size()) {
    out.push_back(events.size());
  }
  return out;
}

std::vector<UncertainItem> CollectUncertain(const CrashRecording& rec, size_t crash_index) {
  const std::vector<WState> state = Classify(rec, crash_index);
  const size_t n = std::min(crash_index, rec.events.size());
  std::vector<UncertainItem> items;
  for (size_t i = 0; i < n; ++i) {
    if (state[i] != WState::kUncertain) {
      continue;
    }
    const BioEvent& ev = rec.events[i];
    if (ev.op == BioOp::kWrite) {
      const size_t blocks = MediaBlocks(ev);
      for (size_t b = 0; b < blocks; ++b) {
        items.push_back(UncertainItem{i, static_cast<uint32_t>(b), false});
      }
    } else if (ev.op == BioOp::kPmrWrite) {
      items.push_back(UncertainItem{i, 0, true, false});
    } else if (ev.op == BioOp::kNvmWrite) {
      items.push_back(UncertainItem{i, 0, false, true});
    }
  }
  return items;
}

uint64_t TornMask(uint64_t torn_seed, const UncertainItem& item, uint8_t variant,
                  size_t units) {
  CCNVME_CHECK(units >= 1 && units <= 64);
  if (units == 1) {
    return 1;  // a one-unit payload cannot tear
  }
  uint8_t key[32];
  PutU64(key, 0, torn_seed);
  PutU64(key, 8, item.event_index);
  // is_nvm gets its own key byte rather than widening the block shift, so
  // media/PMR items keep the pre-NVM-tier key layout and replay artifacts
  // saved by earlier versions still reproduce the same crash states.
  PutU64(key, 16, (static_cast<uint64_t>(item.block) << 1) | (item.is_pmr ? 1 : 0));
  PutU64(key, 24, variant | (item.is_nvm ? 0x100ull : 0));
  const uint64_t h = Fnv1a(key);
  const uint64_t non_trivial = (units == 64 ? ~0ull - 1 : (1ull << units) - 2);
  return 1 + (h % non_trivial);  // in [1, 2^units - 2]: strict, non-empty
}

CrashImage BuildCrashState(const CrashRecording& rec, const CrashPlan& plan,
                           uint64_t torn_seed) {
  const std::vector<WState> state = Classify(rec, plan.crash_index);
  const std::vector<UncertainItem> items = CollectUncertain(rec, plan.crash_index);
  std::map<std::pair<size_t, uint32_t>, uint8_t> choice_of;
  for (size_t k = 0; k < items.size(); ++k) {
    const uint8_t c = k < plan.choices.size() ? plan.choices[k] : kChoiceAbsent;
    choice_of[{items[k].event_index, items[k].block}] = c;
  }

  CrashImage image;
  image.devices = rec.base.devices;
  image.nvm = rec.base.nvm;
  // One reconstructed PMR per member device.
  std::vector<Pmr> pmrs;
  pmrs.reserve(image.devices.size());
  for (const DeviceImage& dev : image.devices) {
    pmrs.emplace_back(dev.pmr.size());
    std::copy(dev.pmr.begin(), dev.pmr.end(), pmrs.back().mutable_bytes().begin());
  }

  const size_t n = std::min(plan.crash_index, rec.events.size());
  for (size_t i = 0; i < n; ++i) {
    const BioEvent& ev = rec.events[i];
    if (ev.op == BioOp::kNvmWrite) {
      CCNVME_CHECK_LE(ev.lba + ev.data.size(), image.nvm.size())
          << "NVM store outside the recorded base image";
      uint64_t mask = ~0ull;  // all words
      if (state[i] == WState::kUncertain) {
        const uint8_t c = choice_of[{i, 0}];
        if (c == kChoiceAbsent) {
          continue;
        }
        if (c >= kChoiceTornBase) {
          const size_t words = (ev.data.size() + kNvmWordSize - 1) / kNvmWordSize;
          mask = TornMask(torn_seed, UncertainItem{i, 0, false, true},
                          static_cast<uint8_t>(c - kChoiceTornBase), words);
        }
      }
      NvmApplyTornWords(image.nvm, ev.lba, ev.data, mask);
      continue;
    }
    CCNVME_CHECK_LT(ev.device, image.devices.size());
    if (ev.op == BioOp::kWrite) {
      if (state[i] == WState::kAbsent) {
        continue;
      }
      const size_t blocks = MediaBlocks(ev);
      for (size_t b = 0; b < blocks; ++b) {
        uint64_t mask = ~0ull;  // all sectors
        if (state[i] == WState::kUncertain) {
          const uint8_t c = choice_of[{i, static_cast<uint32_t>(b)}];
          if (c == kChoiceAbsent) {
            continue;
          }
          if (c >= kChoiceTornBase) {
            mask = TornMask(torn_seed, UncertainItem{i, static_cast<uint32_t>(b), false},
                            static_cast<uint8_t>(c - kChoiceTornBase), kSectorsPerBlock);
          }
        }
        const size_t begin = b * kFsBlockSize;
        const size_t end = std::min(begin + kFsBlockSize, ev.data.size());
        Buffer& dst = image.devices[ev.device].media[ev.lba + b];
        if (dst.size() != kFsBlockSize) {
          dst.assign(kFsBlockSize, 0);
        }
        for (size_t s = 0; s * kSectorSize < end - begin; ++s) {
          if (((mask >> s) & 1) == 0) {
            continue;
          }
          const size_t so = begin + s * kSectorSize;
          const size_t len = std::min(kSectorSize, end - so);
          std::copy(ev.data.begin() + static_cast<long>(so),
                    ev.data.begin() + static_cast<long>(so + len), dst.begin() + s * kSectorSize);
        }
      }
    } else if (ev.op == BioOp::kPmrWrite || ev.op == BioOp::kPmrDoorbell) {
      Pmr& pmr = pmrs[ev.device];
      if (ev.op == BioOp::kPmrWrite && state[i] == WState::kUncertain) {
        const uint8_t c = choice_of[{i, 0}];
        if (c == kChoiceAbsent) {
          continue;
        }
        if (c >= kChoiceTornBase) {
          const size_t words = (ev.data.size() + kMmioWordSize - 1) / kMmioWordSize;
          pmr.ApplyTornWords(ev.lba, ev.data,
                             TornMask(torn_seed, UncertainItem{i, 0, true},
                                      static_cast<uint8_t>(c - kChoiceTornBase), words));
          continue;
        }
      }
      pmr.Write(ev.lba, ev.data);
    }
  }
  for (size_t d = 0; d < image.devices.size(); ++d) {
    image.devices[d].pmr.assign(pmrs[d].bytes().begin(), pmrs[d].bytes().end());
  }
  return image;
}

std::string CheckCrashState(const CrashRecording& rec, const CrashPlan& plan,
                            uint64_t torn_seed, std::string* metrics_json) {
  const CrashImage image = BuildCrashState(rec, plan, torn_seed);
  StorageStack stack(rec.config, image);
  if (metrics_json != nullptr) {
    stack.EnableMetrics();
  }
  auto export_metrics = [&] {
    if (metrics_json != nullptr) {
      *metrics_json = ExportJson(stack.metrics()->TakeSnapshot());
    }
  };
  if (rec.config.kv.enabled) {
    // KV-native stack: "mount" = KvSsd attach (shadow replay + liveness
    // rebuild), "fsck" = the KvSsd structural check, facts = key lookups
    // through the KV driver.
    Status attach = stack.KvAttach();
    if (!attach.ok()) {
      export_metrics();
      return "kv attach failed: " + attach.ToString();
    }
    std::map<std::string, OracleFact> active;
    for (const auto& fe : rec.facts) {
      if (fe.event_index > plan.crash_index) {
        break;
      }
      if (fe.invalidate) {
        active.erase(fe.fact.path);
      } else {
        active[fe.fact.path] = fe.fact;
      }
    }
    std::string failure;
    stack.Run([&] {
      Status consistent = stack.kv_ssd()->CheckConsistency();
      if (!consistent.ok()) {
        failure = "inconsistent kv-ssd: " + consistent.ToString();
        return;
      }
      for (const auto& [key, fact] : active) {
        auto got = stack.kv_driver()->Retrieve(0, fact.path);
        if (!got.ok() && got.status().code() != ErrorCode::kNotFound) {
          failure = DescribeFact(fact) + " violated: retrieve failed: " +
                    got.status().ToString();
          return;
        }
        auto matches = [&](uint64_t want_size, uint64_t want_hash) {
          if (want_size == kKvSizeAbsent) {
            return !got.ok();
          }
          return got.ok() && got->size() == want_size && Fnv1a(*got) == want_hash;
        };
        switch (fact.kind) {
          case OracleFact::Kind::kKvAbsent:
            if (got.ok()) {
              failure = DescribeFact(fact) + " violated: key still exists";
              return;
            }
            break;
          case OracleFact::Kind::kKvValue:
            if (!matches(fact.size, fact.content_hash)) {
              failure = DescribeFact(fact) + " violated: value " +
                        (got.ok() ? "mismatch" : "missing");
              return;
            }
            break;
          case OracleFact::Kind::kKvValueOneOf:
            if (!matches(fact.size, fact.content_hash) &&
                !matches(fact.alt_size, fact.alt_content_hash)) {
              failure = DescribeFact(fact) + " violated: value matches neither version";
              return;
            }
            break;
          default:
            failure = "non-KV fact on a KV stack: " + DescribeFact(fact);
            return;
        }
      }
    });
    export_metrics();
    return failure;
  }

  Status mount = stack.MountExisting();
  if (!mount.ok()) {
    export_metrics();
    return "mount failed: " + mount.ToString();
  }

  // Latest fact per key wins (a later unlink supersedes an earlier
  // create); an invalidation disarms the path until the next fact. Region
  // facts are keyed per path@offset so one file's regions coexist, and an
  // invalidation of the path disarms every one of them.
  const auto fact_key = [](const OracleFact& f) {
    return f.kind == OracleFact::Kind::kFileRegion
               ? f.path + "@" + std::to_string(f.offset)
               : f.path;
  };
  std::map<std::string, OracleFact> active;
  for (const auto& fe : rec.facts) {
    if (fe.event_index > plan.crash_index) {
      break;
    }
    if (fe.invalidate) {
      const std::string region_prefix = fe.fact.path + "@";
      for (auto it = active.begin(); it != active.end();) {
        const bool match = it->first == fe.fact.path ||
                           it->first.compare(0, region_prefix.size(), region_prefix) == 0;
        it = match ? active.erase(it) : ++it;
      }
    } else {
      active[fact_key(fe.fact)] = fe.fact;
    }
  }

  std::string failure;
  stack.Run([&] {
    Status consistent = stack.fs().CheckConsistency();
    if (!consistent.ok()) {
      failure = "inconsistent fs: " + consistent.ToString();
      return;
    }
    for (const auto& [key, fact] : active) {
      auto ino = stack.fs().Lookup(fact.path);
      switch (fact.kind) {
        case OracleFact::Kind::kFileAbsent:
          if (ino.ok()) {
            failure = DescribeFact(fact) + " violated: path still exists";
            return;
          }
          break;
        case OracleFact::Kind::kFileExists:
        case OracleFact::Kind::kDirExists:
          if (!ino.ok()) {
            failure = DescribeFact(fact) + " violated: path missing";
            return;
          }
          break;
        case OracleFact::Kind::kFileRegion: {
          if (!ino.ok()) {
            failure = DescribeFact(fact) + " violated: path missing";
            return;
          }
          auto size = stack.fs().FileSize(*ino);
          if (!size.ok() || *size < fact.offset + fact.size) {
            failure = DescribeFact(fact) + " violated: file too short";
            return;
          }
          Buffer content(fact.size);
          if (fact.size > 0 && !stack.fs().Read(*ino, fact.offset, content).ok()) {
            failure = DescribeFact(fact) + " violated: region unreadable";
            return;
          }
          if (Fnv1a(content) != fact.content_hash) {
            failure = DescribeFact(fact) + " violated: region content mismatch";
            return;
          }
          break;
        }
        case OracleFact::Kind::kFileContent:
        case OracleFact::Kind::kFileContentOneOf: {
          if (!ino.ok()) {
            failure = DescribeFact(fact) + " violated: path missing";
            return;
          }
          auto size = stack.fs().FileSize(*ino);
          if (!size.ok()) {
            failure = DescribeFact(fact) + " violated: size unreadable";
            return;
          }
          auto hash_matches = [&](uint64_t want_size, uint64_t want_hash) -> bool {
            if (*size != want_size) {
              return false;
            }
            Buffer content(want_size);
            if (want_size > 0 && !stack.fs().Read(*ino, 0, content).ok()) {
              return false;
            }
            return Fnv1a(content) == want_hash;
          };
          if (fact.kind == OracleFact::Kind::kFileContent) {
            if (*size != fact.size) {
              failure = DescribeFact(fact) + " violated: size mismatch";
              return;
            }
            if (!hash_matches(fact.size, fact.content_hash)) {
              failure = DescribeFact(fact) + " violated: content mismatch";
              return;
            }
          } else if (!hash_matches(fact.size, fact.content_hash) &&
                     !hash_matches(fact.alt_size, fact.alt_content_hash)) {
            failure = DescribeFact(fact) + " violated: content matches neither version";
            return;
          }
          break;
        }
        case OracleFact::Kind::kKvValue:
        case OracleFact::Kind::kKvAbsent:
        case OracleFact::Kind::kKvValueOneOf:
          // KV facts only arise on config.kv.enabled stacks (handled above).
          break;
      }
    }
  });
  export_metrics();
  return failure;
}

}  // namespace ccnvme

#include "src/crashtest/crash_monkey.h"

#include "src/common/logging.h"

namespace ccnvme {

CrashTestReport CrashMonkey::Run(const CrashWorkload& workload, int num_crash_points) {
  const CrashRecording rec = RecordWorkload(config_, workload);
  CrashTestReport report;
  report.crash_points = num_crash_points;
  constexpr uint8_t kTornVariants = 2;
  for (int i = 0; i < num_crash_points; ++i) {
    // Random crash index, then a random fate for every uncertain item:
    // absent, present, or one of the torn variants.
    CrashPlan plan;
    plan.crash_index = rec.events.empty() ? 0 : rng_.Uniform(rec.events.size() + 1);
    const std::vector<UncertainItem> items = CollectUncertain(rec, plan.crash_index);
    plan.choices.reserve(items.size());
    for (size_t k = 0; k < items.size(); ++k) {
      plan.choices.push_back(
          static_cast<uint8_t>(rng_.Uniform(kChoiceTornBase + kTornVariants)));
    }
    const std::string failure = CheckCrashState(rec, plan, seed_);
    if (failure.empty()) {
      report.passed++;
    } else if (report.failures.size() < 10) {
      report.failures.push_back("crash@" + std::to_string(plan.crash_index) + ": " + failure);
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// The paper's four workloads (Table 4)

CrashWorkload CrashMonkey::CreateDelete() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    for (int i = 0; i < 6; ++i) {
      const std::string path = "/cd_" + std::to_string(i);
      auto ino = fs.Create(path);
      CCNVME_CHECK(ino.ok());
      Buffer data(512 + static_cast<size_t>(i) * 100, static_cast<uint8_t>(i));
      CCNVME_CHECK(fs.Write(*ino, 0, data).ok());
      CCNVME_CHECK(fs.Fsync(*ino).ok());
      ctx.AddFact(OracleFact::FileContent(fs, path));
    }
    for (int i = 0; i < 6; i += 2) {
      const std::string path = "/cd_" + std::to_string(i);
      ctx.InvalidateFact(path);
      CCNVME_CHECK(fs.Unlink(path).ok());
      CCNVME_CHECK(fs.FsyncPath("/").ok());
      ctx.AddFact(OracleFact::FileAbsent(path));
    }
  };
}

CrashWorkload CrashMonkey::Generic035() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    // rename() overwrite on an existing file.
    auto f1 = fs.Create("/035_src");
    CCNVME_CHECK(f1.ok());
    CCNVME_CHECK(fs.Write(*f1, 0, Buffer(1000, 0xAA)).ok());
    CCNVME_CHECK(fs.Fsync(*f1).ok());
    const OracleFact src_content = OracleFact::FileContent(fs, "/035_src");
    ctx.AddFact(src_content);

    auto f2 = fs.Create("/035_dst");
    CCNVME_CHECK(f2.ok());
    CCNVME_CHECK(fs.Write(*f2, 0, Buffer(2000, 0xBB)).ok());
    CCNVME_CHECK(fs.Fsync(*f2).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/035_dst"));

    ctx.InvalidateFact("/035_src");
    ctx.InvalidateFact("/035_dst");
    CCNVME_CHECK(fs.Rename("/035_src", "/035_dst").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::FileAbsent("/035_src"));
    OracleFact moved = src_content;
    moved.path = "/035_dst";
    ctx.AddFact(moved);

    // rename() overwrite on an (empty) existing directory.
    CCNVME_CHECK(fs.Mkdir("/035_da").ok());
    CCNVME_CHECK(fs.Mkdir("/035_db").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::DirExists("/035_da"));
    ctx.InvalidateFact("/035_da");
    ctx.InvalidateFact("/035_db");
    CCNVME_CHECK(fs.Rename("/035_da", "/035_db").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::FileAbsent("/035_da"));
    ctx.AddFact(OracleFact::DirExists("/035_db"));
  };
}

CrashWorkload CrashMonkey::Generic106() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    auto orig = fs.Create("/106_orig");
    CCNVME_CHECK(orig.ok());
    CCNVME_CHECK(fs.Write(*orig, 0, Buffer(1500, 0x11)).ok());
    CCNVME_CHECK(fs.Fsync(*orig).ok());
    const OracleFact content = OracleFact::FileContent(fs, "/106_orig");
    ctx.AddFact(content);

    CCNVME_CHECK(fs.Link("/106_orig", "/106_link").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    OracleFact linked = content;
    linked.path = "/106_link";
    ctx.AddFact(linked);

    ctx.InvalidateFact("/106_orig");
    CCNVME_CHECK(fs.Unlink("/106_orig").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::FileAbsent("/106_orig"));
    ctx.AddFact(linked);  // still reachable through the link

    // Directory removal.
    CCNVME_CHECK(fs.Mkdir("/106_dir").ok());
    CCNVME_CHECK(fs.Create("/106_dir/t").ok());
    CCNVME_CHECK(fs.FsyncPath("/106_dir").ok());
    CCNVME_CHECK(fs.Unlink("/106_dir/t").ok());
    CCNVME_CHECK(fs.Rmdir("/106_dir").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::FileAbsent("/106_dir"));
  };
}

CrashWorkload CrashMonkey::Generic321() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    CCNVME_CHECK(fs.Mkdir("/321_d").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::DirExists("/321_d"));

    auto f = fs.Create("/321_d/f");
    CCNVME_CHECK(f.ok());
    CCNVME_CHECK(fs.Write(*f, 0, Buffer(3000, 0x77)).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    CCNVME_CHECK(fs.FsyncPath("/321_d").ok());
    const OracleFact content = OracleFact::FileContent(fs, "/321_d/f");
    ctx.AddFact(content);

    ctx.InvalidateFact("/321_d/f");
    CCNVME_CHECK(fs.Rename("/321_d/f", "/321_d/g").ok());
    CCNVME_CHECK(fs.FsyncPath("/321_d").ok());
    ctx.AddFact(OracleFact::FileAbsent("/321_d/f"));
    OracleFact moved = content;
    moved.path = "/321_d/g";
    ctx.AddFact(moved);

    // Nested directory fsync.
    CCNVME_CHECK(fs.Mkdir("/321_d/sub").ok());
    CCNVME_CHECK(fs.FsyncPath("/321_d").ok());
    ctx.AddFact(OracleFact::DirExists("/321_d/sub"));
  };
}

CrashWorkload CrashMonkey::TruncateShrinkGrow() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    auto f = fs.Create("/tr");
    CCNVME_CHECK(f.ok());
    CCNVME_CHECK(fs.Write(*f, 0, Buffer(6 * kFsBlockSize, 0x61)).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/tr"));

    ctx.InvalidateFact("/tr");
    CCNVME_CHECK(fs.Truncate(*f, kFsBlockSize + 17).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/tr"));

    // The freed blocks get reused by another file immediately.
    auto g = fs.Create("/reuser");
    CCNVME_CHECK(g.ok());
    CCNVME_CHECK(fs.Write(*g, 0, Buffer(5 * kFsBlockSize, 0x62)).ok());
    CCNVME_CHECK(fs.Fsync(*g).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/reuser"));

    // Grow the truncated file back over a hole and persist again.
    ctx.InvalidateFact("/tr");
    CCNVME_CHECK(fs.Truncate(*f, 4 * kFsBlockSize).ok());
    CCNVME_CHECK(fs.Write(*f, 3 * kFsBlockSize, Buffer(100, 0x63)).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/tr"));
  };
}

CrashWorkload CrashMonkey::OverwriteMixed() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    auto f = fs.Create("/ow");
    CCNVME_CHECK(f.ok());
    CCNVME_CHECK(fs.Write(*f, 0, Buffer(4 * kFsBlockSize, 0x10)).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/ow"));

    // A sequence of overwrite+append rounds, each fsynced.
    for (int round = 1; round <= 4; ++round) {
      ctx.InvalidateFact("/ow");
      // Overwrite the middle of an existing block (RMW path).
      CCNVME_CHECK(fs.Write(*f, kFsBlockSize + 200, Buffer(900,
                            static_cast<uint8_t>(0x20 + round))).ok());
      // Append one more block.
      CCNVME_CHECK(fs.Append(*f, Buffer(kFsBlockSize,
                             static_cast<uint8_t>(0x30 + round))).ok());
      CCNVME_CHECK(fs.Fsync(*f).ok());
      ctx.AddFact(OracleFact::FileContent(fs, "/ow"));
    }
  };
}

CrashWorkload CrashMonkey::AtomicOverwrite() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    auto f = fs.Create("/at");
    CCNVME_CHECK(f.ok());
    CCNVME_CHECK(fs.Write(*f, 0, Buffer(3 * kFsBlockSize, 0xA1)).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    const OracleFact before = OracleFact::FileContent(fs, "/at");
    ctx.AddFact(before);

    // Multi-block in-place overwrite made atomic by fatomic (§5.1): after a
    // crash the file holds the old bytes or the new ones, never a mix. The
    // new content's hash is read back through the page cache before any of
    // it is persisted.
    CCNVME_CHECK(fs.Write(*f, 0, Buffer(3 * kFsBlockSize, 0xB2)).ok());
    const OracleFact after = OracleFact::FileContent(fs, "/at");
    ctx.InvalidateFact("/at");
    ctx.AddFact(OracleFact::ContentOneOf(before, after));
    CCNVME_CHECK(fs.Fatomic(*f).ok());

    // fatomic returned at the atomicity point; durability needs the fsync.
    CCNVME_CHECK(fs.Fsync(*f).ok());
    ctx.InvalidateFact("/at");
    ctx.AddFact(after);

    // Second round through fdataatomic.
    CCNVME_CHECK(fs.Write(*f, 0, Buffer(3 * kFsBlockSize, 0xC3)).ok());
    const OracleFact after2 = OracleFact::FileContent(fs, "/at");
    ctx.InvalidateFact("/at");
    ctx.AddFact(OracleFact::ContentOneOf(after, after2));
    CCNVME_CHECK(fs.Fdataatomic(*f).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    ctx.InvalidateFact("/at");
    ctx.AddFact(after2);
  };
}

// ---------------------------------------------------------------------------
// NVLog workloads

CrashWorkload CrashMonkey::NvlogAppends() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    // Two files, alternating appends. Each fsync returns at the NVM fence;
    // the drainer's block-stack checkpoint trails behind, so the recorded
    // stream interleaves armed facts with undrained log entries.
    auto a = fs.Create("/nv_a");
    auto b = fs.Create("/nv_b");
    CCNVME_CHECK(a.ok() && b.ok());
    for (int round = 0; round < 3; ++round) {
      if (round > 0) {
        ctx.InvalidateFact("/nv_a");
      }
      CCNVME_CHECK(
          fs.Append(*a, Buffer(800 + static_cast<size_t>(round) * 300,
                               static_cast<uint8_t>(0x50 + round))).ok());
      CCNVME_CHECK(fs.Fsync(*a).ok());
      ctx.AddFact(OracleFact::FileContent(fs, "/nv_a"));

      if (round > 0) {
        ctx.InvalidateFact("/nv_b");
      }
      CCNVME_CHECK(fs.Append(*b, Buffer(kFsBlockSize / 2,
                                        static_cast<uint8_t>(0x70 + round))).ok());
      CCNVME_CHECK(fs.Fsync(*b).ok());
      ctx.AddFact(OracleFact::FileContent(fs, "/nv_b"));
    }
  };
}

CrashWorkload CrashMonkey::NvlogOverwriteChurn() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    auto f = fs.Create("/nv_churn");
    CCNVME_CHECK(f.ok());
    CCNVME_CHECK(fs.Write(*f, 0, Buffer(2 * kFsBlockSize, 0x01)).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/nv_churn"));
    // Each round logs a fresh copy of the SAME data block; all the copies
    // can sit undrained in the ring together, so recovery's in-seq replay
    // (and the drainer's newest-wins coalescing) must pick the last one.
    for (int round = 1; round <= 4; ++round) {
      ctx.InvalidateFact("/nv_churn");
      CCNVME_CHECK(fs.Write(*f, 100, Buffer(kFsBlockSize,
                            static_cast<uint8_t>(0x80 + round))).ok());
      CCNVME_CHECK(fs.Fsync(*f).ok());
      ctx.AddFact(OracleFact::FileContent(fs, "/nv_churn"));
    }
  };
}

// ---------------------------------------------------------------------------
// KV-native (KV-SSD) workloads

CrashWorkload CrashMonkey::KvPutGet() {
  return [](CrashTestContext& ctx) {
    KvNvmeDriver& kv = ctx.kv();
    std::vector<std::string> values;
    for (int i = 0; i < 5; ++i) {
      const std::string key = "k" + std::to_string(i);
      values.push_back(std::string(600 + static_cast<size_t>(i) * 1700,
                                   static_cast<char>('a' + i)));
      // The store is about to enter the device-side commit window: a crash
      // may land before or after the meta word, so either version is legal
      // — a mix never is.
      ctx.AddFact(OracleFact::KvOneOf(OracleFact::KvAbsent(key),
                                      OracleFact::KvValue(key, values.back())));
      CCNVME_CHECK(kv.Store(0, key, values.back()).ok());
      ctx.InvalidateFact(key);
      ctx.AddFact(OracleFact::KvValue(key, values.back()));
    }

    // Overwrite: the new value lands on fresh flash pages; the old run is
    // freed only after the meta word flips.
    const std::string nv(3 * 4096 + 123, 'Z');
    ctx.InvalidateFact("k2");
    ctx.AddFact(OracleFact::KvOneOf(OracleFact::KvValue("k2", values[2]),
                                    OracleFact::KvValue("k2", nv)));
    CCNVME_CHECK(kv.Store(0, "k2", nv).ok());
    ctx.InvalidateFact("k2");
    ctx.AddFact(OracleFact::KvValue("k2", nv));

    // Delete: old value or absent until the tombstone word is durable.
    ctx.InvalidateFact("k1");
    ctx.AddFact(OracleFact::KvOneOf(OracleFact::KvValue("k1", values[1]),
                                    OracleFact::KvAbsent("k1")));
    CCNVME_CHECK(kv.Delete(0, "k1").ok());
    ctx.InvalidateFact("k1");
    ctx.AddFact(OracleFact::KvAbsent("k1"));

    // Survivors double-checked through Exist/Retrieve (adds read traffic —
    // map demand loads — to the recorded stream without changing facts).
    auto e = kv.Exist(0, "k0");
    CCNVME_CHECK(e.ok() && *e);
    auto got = kv.Retrieve(0, "k2");
    CCNVME_CHECK(got.ok() && got->size() == nv.size());
  };
}

CrashWorkload CrashMonkey::KvOverwriteChurn() {
  return [](CrashTestContext& ctx) {
    KvNvmeDriver& kv = ctx.kv();
    // One hot key + a few cold ones pinning pages so small-geometry configs
    // hit the GC low-water mark mid-churn.
    std::vector<std::string> cold;
    for (int i = 0; i < 3; ++i) {
      const std::string key = "cold" + std::to_string(i);
      cold.push_back(std::string(2 * 4096, static_cast<char>('A' + i)));
      ctx.AddFact(OracleFact::KvOneOf(OracleFact::KvAbsent(key),
                                      OracleFact::KvValue(key, cold.back())));
      CCNVME_CHECK(kv.Store(0, key, cold.back()).ok());
      ctx.InvalidateFact(key);
      ctx.AddFact(OracleFact::KvValue(key, cold.back()));
    }
    std::string prev;
    for (int round = 0; round < 6; ++round) {
      const std::string next(3 * 4096 + static_cast<size_t>(round) * 512,
                             static_cast<char>('a' + round));
      ctx.InvalidateFact("hot");
      ctx.AddFact(OracleFact::KvOneOf(
          round == 0 ? OracleFact::KvAbsent("hot") : OracleFact::KvValue("hot", prev),
          OracleFact::KvValue("hot", next)));
      CCNVME_CHECK(kv.Store(0, "hot", next).ok());
      ctx.InvalidateFact("hot");
      ctx.AddFact(OracleFact::KvValue("hot", next));
      prev = next;
    }
  };
}

// ---------------------------------------------------------------------------
// Multi-core workloads

CrashWorkload CrashMonkey::MultiCoreAppends() {
  return [](CrashTestContext& ctx) {
    constexpr uint16_t kCores = 2;
    for (uint16_t core = 0; core < kCores; ++core) {
      ctx.SpawnOnCore(core, [&ctx, core] {
        ExtFs& fs = ctx.fs();
        const std::string path = "/mc_" + std::to_string(core);
        auto ino = fs.Create(path);
        CCNVME_CHECK(ino.ok());
        for (int round = 0; round < 3; ++round) {
          if (round > 0) {
            ctx.InvalidateFact(path);
          }
          const size_t len = kFsBlockSize / 2 + static_cast<size_t>(round) * 300;
          const uint8_t fill = static_cast<uint8_t>(0x40 + core * 8 + round);
          CCNVME_CHECK(fs.Append(*ino, Buffer(len, fill)).ok());
          CCNVME_CHECK(fs.Fsync(*ino).ok());
          // The file is exclusive to this core, so freezing its content
          // right after fsync is race-free even mid-interleaving.
          ctx.AddFact(OracleFact::FileContent(fs, path));
        }
      });
    }
    ctx.Join();
  };
}

CrashWorkload CrashMonkey::MultiCoreSharedFsync() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    constexpr uint16_t kCores = 2;
    constexpr uint64_t kRegion = 2 * kFsBlockSize;
    auto ino = fs.Create("/shared");
    CCNVME_CHECK(ino.ok());
    CCNVME_CHECK(fs.Write(*ino, 0, Buffer(kCores * kRegion, 0x00)).ok());
    CCNVME_CHECK(fs.Fsync(*ino).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/shared"));

    // The writers are about to legally mutate the file.
    ctx.InvalidateFact("/shared");
    const InodeNum shared = *ino;
    for (uint16_t core = 0; core < kCores; ++core) {
      ctx.SpawnOnCore(core, [&ctx, shared, core] {
        ExtFs& fs = ctx.fs();
        const uint64_t off = core * kRegion;
        CCNVME_CHECK(
            fs.Write(shared, off, Buffer(kRegion, static_cast<uint8_t>(0xA0 + core))).ok());
        // Both cores fsync the SAME inode concurrently: one becomes the
        // group-commit leader, the other piggybacks or follows. When OUR
        // fsync returns, OUR region must be durable — the exact guarantee
        // the test_skip_cross_core_order injected bug breaks.
        CCNVME_CHECK(fs.Fsync(shared).ok());
        ctx.AddFact(OracleFact::FileRegion(fs, "/shared", off, kRegion));
      });
    }
    ctx.Join();
    // All writers done and fsynced: the whole file is stable again.
    ctx.AddFact(OracleFact::FileContent(fs, "/shared"));
  };
}

}  // namespace ccnvme

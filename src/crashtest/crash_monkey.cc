#include "src/crashtest/crash_monkey.h"

#include <map>

#include "src/common/logging.h"

namespace ccnvme {

OracleFact OracleFact::FileExists(std::string path) {
  OracleFact f;
  f.kind = Kind::kFileExists;
  f.path = std::move(path);
  return f;
}

OracleFact OracleFact::FileAbsent(std::string path) {
  OracleFact f;
  f.kind = Kind::kFileAbsent;
  f.path = std::move(path);
  return f;
}

OracleFact OracleFact::DirExists(std::string path) {
  OracleFact f;
  f.kind = Kind::kDirExists;
  f.path = std::move(path);
  return f;
}

OracleFact OracleFact::FileContent(ExtFs& fs, const std::string& path) {
  OracleFact f;
  f.kind = Kind::kFileContent;
  f.path = path;
  auto ino = fs.Lookup(path);
  CCNVME_CHECK(ino.ok()) << "FileContent fact for missing " << path;
  auto size = fs.FileSize(*ino);
  CCNVME_CHECK(size.ok());
  f.size = *size;
  Buffer content(f.size);
  if (f.size > 0) {
    Status st = fs.Read(*ino, 0, content);
    CCNVME_CHECK(st.ok());
  }
  f.content_hash = Fnv1a(content);
  return f;
}

namespace {

class ContextImpl : public CrashTestContext {
 public:
  ContextImpl(ExtFs& fs, std::vector<CrashMonkey::FactEvent>* facts,
              const std::vector<BioEvent>* events)
      : fs_(fs), facts_(facts), events_(events) {}

  ExtFs& fs() override { return fs_; }
  void AddFact(const OracleFact& fact) override {
    facts_->push_back({events_->size(), false, fact});
  }
  void InvalidateFact(const std::string& path) override {
    OracleFact f;
    f.path = path;
    facts_->push_back({events_->size(), true, f});
  }

 private:
  ExtFs& fs_;
  std::vector<CrashMonkey::FactEvent>* facts_;
  const std::vector<BioEvent>* events_;
};

std::string DescribeFact(const OracleFact& f) {
  switch (f.kind) {
    case OracleFact::Kind::kFileExists:
      return "exists(" + f.path + ")";
    case OracleFact::Kind::kFileAbsent:
      return "absent(" + f.path + ")";
    case OracleFact::Kind::kDirExists:
      return "dir(" + f.path + ")";
    case OracleFact::Kind::kFileContent:
      return "content(" + f.path + ", size=" + std::to_string(f.size) + ")";
  }
  return "?";
}

}  // namespace

CrashMonkey::Recording CrashMonkey::Record(const CrashWorkload& workload) {
  Recording rec;
  StorageStack stack(config_);
  Status st = stack.MkfsAndMount();
  CCNVME_CHECK(st.ok()) << st.ToString();
  rec.base = stack.CaptureCrashImage();

  stack.blk().set_recorder([&rec](const BioEvent& ev) { rec.events.push_back(ev); });
  ContextImpl ctx(stack.fs(), &rec.facts, &rec.events);
  stack.Run([&] { workload(ctx); });
  return rec;
}

CrashImage CrashMonkey::BuildCrashState(const Recording& rec, size_t crash_index) {
  // Durability analysis over the prefix [0, crash_index).
  struct WriteInfo {
    size_t submit_index;
    const BioEvent* ev;
    size_t complete_index = SIZE_MAX;
  };
  std::map<uint64_t, WriteInfo> writes;          // seq -> info
  std::vector<size_t> flush_completions;         // event indices
  for (size_t i = 0; i < crash_index && i < rec.events.size(); ++i) {
    const BioEvent& ev = rec.events[i];
    if (ev.op == BioOp::kWrite) {
      writes[ev.seq] = WriteInfo{i, &ev};
    } else if (ev.op == BioOp::kComplete) {
      auto it = writes.find(ev.seq);
      if (it != writes.end()) {
        it->second.complete_index = i;
      } else {
        // Completion of a flush.
        flush_completions.push_back(i);
      }
    }
  }
  const bool plp = config_.ssd.power_loss_protection || !config_.ssd.volatile_cache;

  CrashImage image;
  image.media = rec.base.media;
  image.pmr.assign(rec.base.pmr.begin(), rec.base.pmr.end());

  auto apply = [&](const BioEvent& ev, bool whole, Rng& rng) {
    const size_t blocks = ev.data.size() / kFsBlockSize;
    for (size_t b = 0; b < blocks; ++b) {
      // Per-4KB persistence decision: the device may tear multi-block
      // writes at block granularity, never within a block.
      if (!whole && rng.OneIn(2)) {
        continue;
      }
      Buffer& dst = image.media[ev.lba + b];
      dst.assign(ev.data.begin() + static_cast<long>(b * kFsBlockSize),
                 ev.data.begin() + static_cast<long>((b + 1) * kFsBlockSize));
    }
  };

  // Apply in submission order: durable writes fully, in-flight ones as a
  // random per-block subset.
  std::vector<const WriteInfo*> ordered;
  for (auto& [seq, info] : writes) {
    (void)seq;
    ordered.push_back(&info);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const WriteInfo* a, const WriteInfo* b) {
              return a->submit_index < b->submit_index;
            });
  for (const WriteInfo* w : ordered) {
    bool durable = false;
    if (w->complete_index != SIZE_MAX) {
      if (plp || (w->ev->flags & kBioFua) != 0 || (w->ev->flags & kBioTx) != 0) {
        // ccNVMe transaction members get their completion event only when
        // the whole transaction is durably complete (the commit carries an
        // implicit flush barrier + FUA on cache-backed drives, §4.2).
        durable = true;
      } else {
        // Volatile cache: durable once a flush completed after this write's
        // completion.
        for (size_t fc : flush_completions) {
          if (fc > w->complete_index) {
            durable = true;
            break;
          }
        }
      }
    }
    apply(*w->ev, durable, rng_);
  }
  return image;
}

std::string CrashMonkey::CheckCrashState(const Recording& rec, size_t crash_index) {
  const CrashImage image = BuildCrashState(rec, crash_index);
  StorageStack stack(config_, image);
  Status mount = stack.MountExisting();
  if (!mount.ok()) {
    return "mount failed: " + mount.ToString();
  }

  // Latest fact per path wins (a later unlink supersedes an earlier
  // create); an invalidation disarms the path until the next fact.
  std::map<std::string, OracleFact> active;
  for (const auto& fe : rec.facts) {
    if (fe.event_index > crash_index) {
      break;
    }
    if (fe.invalidate) {
      active.erase(fe.fact.path);
    } else {
      active[fe.fact.path] = fe.fact;
    }
  }

  std::string failure;
  stack.Run([&] {
    Status consistent = stack.fs().CheckConsistency();
    if (!consistent.ok()) {
      failure = "inconsistent fs: " + consistent.ToString();
      return;
    }
    for (const auto& [path, fact] : active) {
      auto ino = stack.fs().Lookup(path);
      switch (fact.kind) {
        case OracleFact::Kind::kFileAbsent:
          if (ino.ok()) {
            failure = DescribeFact(fact) + " violated: path still exists";
            return;
          }
          break;
        case OracleFact::Kind::kFileExists:
        case OracleFact::Kind::kDirExists:
          if (!ino.ok()) {
            failure = DescribeFact(fact) + " violated: path missing";
            return;
          }
          break;
        case OracleFact::Kind::kFileContent: {
          if (!ino.ok()) {
            failure = DescribeFact(fact) + " violated: path missing";
            return;
          }
          auto size = stack.fs().FileSize(*ino);
          if (!size.ok() || *size != fact.size) {
            failure = DescribeFact(fact) + " violated: size mismatch";
            return;
          }
          Buffer content(fact.size);
          if (fact.size > 0) {
            Status st = stack.fs().Read(*ino, 0, content);
            if (!st.ok()) {
              failure = DescribeFact(fact) + " violated: unreadable";
              return;
            }
          }
          if (Fnv1a(content) != fact.content_hash) {
            failure = DescribeFact(fact) + " violated: content mismatch";
            return;
          }
          break;
        }
      }
    }
  });
  return failure;
}

CrashTestReport CrashMonkey::Run(const CrashWorkload& workload, int num_crash_points) {
  const Recording rec = Record(workload);
  CrashTestReport report;
  report.crash_points = num_crash_points;
  for (int i = 0; i < num_crash_points; ++i) {
    // Deterministic spread of crash points over the whole event stream,
    // plus random subsets of the in-flight window each time.
    const size_t crash_index =
        rec.events.empty() ? 0 : rng_.Uniform(rec.events.size() + 1);
    const std::string failure = CheckCrashState(rec, crash_index);
    if (failure.empty()) {
      report.passed++;
    } else if (report.failures.size() < 10) {
      report.failures.push_back("crash@" + std::to_string(crash_index) + ": " + failure);
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// The paper's four workloads (Table 4)

CrashWorkload CrashMonkey::CreateDelete() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    for (int i = 0; i < 6; ++i) {
      const std::string path = "/cd_" + std::to_string(i);
      auto ino = fs.Create(path);
      CCNVME_CHECK(ino.ok());
      Buffer data(512 + static_cast<size_t>(i) * 100, static_cast<uint8_t>(i));
      CCNVME_CHECK(fs.Write(*ino, 0, data).ok());
      CCNVME_CHECK(fs.Fsync(*ino).ok());
      ctx.AddFact(OracleFact::FileContent(fs, path));
    }
    for (int i = 0; i < 6; i += 2) {
      const std::string path = "/cd_" + std::to_string(i);
      ctx.InvalidateFact(path);
      CCNVME_CHECK(fs.Unlink(path).ok());
      CCNVME_CHECK(fs.FsyncPath("/").ok());
      ctx.AddFact(OracleFact::FileAbsent(path));
    }
  };
}

CrashWorkload CrashMonkey::Generic035() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    // rename() overwrite on an existing file.
    auto f1 = fs.Create("/035_src");
    CCNVME_CHECK(f1.ok());
    CCNVME_CHECK(fs.Write(*f1, 0, Buffer(1000, 0xAA)).ok());
    CCNVME_CHECK(fs.Fsync(*f1).ok());
    const OracleFact src_content = OracleFact::FileContent(fs, "/035_src");
    ctx.AddFact(src_content);

    auto f2 = fs.Create("/035_dst");
    CCNVME_CHECK(f2.ok());
    CCNVME_CHECK(fs.Write(*f2, 0, Buffer(2000, 0xBB)).ok());
    CCNVME_CHECK(fs.Fsync(*f2).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/035_dst"));

    ctx.InvalidateFact("/035_src");
    ctx.InvalidateFact("/035_dst");
    CCNVME_CHECK(fs.Rename("/035_src", "/035_dst").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::FileAbsent("/035_src"));
    OracleFact moved = src_content;
    moved.path = "/035_dst";
    ctx.AddFact(moved);

    // rename() overwrite on an (empty) existing directory.
    CCNVME_CHECK(fs.Mkdir("/035_da").ok());
    CCNVME_CHECK(fs.Mkdir("/035_db").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::DirExists("/035_da"));
    ctx.InvalidateFact("/035_da");
    ctx.InvalidateFact("/035_db");
    CCNVME_CHECK(fs.Rename("/035_da", "/035_db").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::FileAbsent("/035_da"));
    ctx.AddFact(OracleFact::DirExists("/035_db"));
  };
}

CrashWorkload CrashMonkey::Generic106() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    auto orig = fs.Create("/106_orig");
    CCNVME_CHECK(orig.ok());
    CCNVME_CHECK(fs.Write(*orig, 0, Buffer(1500, 0x11)).ok());
    CCNVME_CHECK(fs.Fsync(*orig).ok());
    const OracleFact content = OracleFact::FileContent(fs, "/106_orig");
    ctx.AddFact(content);

    CCNVME_CHECK(fs.Link("/106_orig", "/106_link").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    OracleFact linked = content;
    linked.path = "/106_link";
    ctx.AddFact(linked);

    ctx.InvalidateFact("/106_orig");
    CCNVME_CHECK(fs.Unlink("/106_orig").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::FileAbsent("/106_orig"));
    ctx.AddFact(linked);  // still reachable through the link

    // Directory removal.
    CCNVME_CHECK(fs.Mkdir("/106_dir").ok());
    CCNVME_CHECK(fs.Create("/106_dir/t").ok());
    CCNVME_CHECK(fs.FsyncPath("/106_dir").ok());
    CCNVME_CHECK(fs.Unlink("/106_dir/t").ok());
    CCNVME_CHECK(fs.Rmdir("/106_dir").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::FileAbsent("/106_dir"));
  };
}

CrashWorkload CrashMonkey::Generic321() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    CCNVME_CHECK(fs.Mkdir("/321_d").ok());
    CCNVME_CHECK(fs.FsyncPath("/").ok());
    ctx.AddFact(OracleFact::DirExists("/321_d"));

    auto f = fs.Create("/321_d/f");
    CCNVME_CHECK(f.ok());
    CCNVME_CHECK(fs.Write(*f, 0, Buffer(3000, 0x77)).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    CCNVME_CHECK(fs.FsyncPath("/321_d").ok());
    const OracleFact content = OracleFact::FileContent(fs, "/321_d/f");
    ctx.AddFact(content);

    ctx.InvalidateFact("/321_d/f");
    CCNVME_CHECK(fs.Rename("/321_d/f", "/321_d/g").ok());
    CCNVME_CHECK(fs.FsyncPath("/321_d").ok());
    ctx.AddFact(OracleFact::FileAbsent("/321_d/f"));
    OracleFact moved = content;
    moved.path = "/321_d/g";
    ctx.AddFact(moved);

    // Nested directory fsync.
    CCNVME_CHECK(fs.Mkdir("/321_d/sub").ok());
    CCNVME_CHECK(fs.FsyncPath("/321_d").ok());
    ctx.AddFact(OracleFact::DirExists("/321_d/sub"));
  };
}

CrashWorkload CrashMonkey::TruncateShrinkGrow() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    auto f = fs.Create("/tr");
    CCNVME_CHECK(f.ok());
    CCNVME_CHECK(fs.Write(*f, 0, Buffer(6 * kFsBlockSize, 0x61)).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/tr"));

    ctx.InvalidateFact("/tr");
    CCNVME_CHECK(fs.Truncate(*f, kFsBlockSize + 17).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/tr"));

    // The freed blocks get reused by another file immediately.
    auto g = fs.Create("/reuser");
    CCNVME_CHECK(g.ok());
    CCNVME_CHECK(fs.Write(*g, 0, Buffer(5 * kFsBlockSize, 0x62)).ok());
    CCNVME_CHECK(fs.Fsync(*g).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/reuser"));

    // Grow the truncated file back over a hole and persist again.
    ctx.InvalidateFact("/tr");
    CCNVME_CHECK(fs.Truncate(*f, 4 * kFsBlockSize).ok());
    CCNVME_CHECK(fs.Write(*f, 3 * kFsBlockSize, Buffer(100, 0x63)).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/tr"));
  };
}

CrashWorkload CrashMonkey::OverwriteMixed() {
  return [](CrashTestContext& ctx) {
    ExtFs& fs = ctx.fs();
    auto f = fs.Create("/ow");
    CCNVME_CHECK(f.ok());
    CCNVME_CHECK(fs.Write(*f, 0, Buffer(4 * kFsBlockSize, 0x10)).ok());
    CCNVME_CHECK(fs.Fsync(*f).ok());
    ctx.AddFact(OracleFact::FileContent(fs, "/ow"));

    // A sequence of overwrite+append rounds, each fsynced.
    for (int round = 1; round <= 4; ++round) {
      ctx.InvalidateFact("/ow");
      // Overwrite the middle of an existing block (RMW path).
      CCNVME_CHECK(fs.Write(*f, kFsBlockSize + 200, Buffer(900,
                            static_cast<uint8_t>(0x20 + round))).ok());
      // Append one more block.
      CCNVME_CHECK(fs.Append(*f, Buffer(kFsBlockSize,
                             static_cast<uint8_t>(0x30 + round))).ok());
      CCNVME_CHECK(fs.Fsync(*f).ok());
      ctx.AddFact(OracleFact::FileContent(fs, "/ow"));
    }
  };
}

}  // namespace ccnvme

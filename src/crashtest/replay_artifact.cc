#include "src/crashtest/replay_artifact.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "src/crashtest/crash_workloads.h"

namespace ccnvme {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

const char* JournalKindName(JournalKind k) {
  switch (k) {
    case JournalKind::kNone:
      return "none";
    case JournalKind::kClassic:
      return "classic";
    case JournalKind::kHorae:
      return "horae";
    case JournalKind::kCcNvmeJbd2:
      return "ccnvme_jbd2";
    case JournalKind::kMultiQueue:
      return "multi_queue";
    case JournalKind::kNvlog:
      return "nvlog";
  }
  return "?";
}

Result<JournalKind> ParseJournalKind(const std::string& s) {
  for (JournalKind k : {JournalKind::kNone, JournalKind::kClassic, JournalKind::kHorae,
                        JournalKind::kCcNvmeJbd2, JournalKind::kMultiQueue,
                        JournalKind::kNvlog}) {
    if (s == JournalKindName(k)) {
      return k;
    }
  }
  return InvalidArgument("unknown journal kind: " + s);
}

Result<SsdConfig> SsdByName(const std::string& name) {
  for (const SsdConfig& c :
       {SsdConfig::Intel750(), SsdConfig::Optane905P(), SsdConfig::OptaneP5800X()}) {
    if (c.name == name) {
      return c;
    }
  }
  return InvalidArgument("unknown SSD preset: " + name);
}

// --- Targeted readers for the flat artifact schema ------------------------

Result<size_t> ValueStart(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  size_t p = json.find(needle);
  if (p == std::string::npos) {
    return NotFound("artifact missing key: " + key);
  }
  p = json.find(':', p + needle.size());
  if (p == std::string::npos) {
    return InvalidArgument("artifact key without value: " + key);
  }
  ++p;
  while (p < json.size() && std::isspace(static_cast<unsigned char>(json[p])) != 0) {
    ++p;
  }
  return p;
}

Result<std::string> GetString(const std::string& json, const std::string& key) {
  CCNVME_ASSIGN_OR_RETURN(size_t p, ValueStart(json, key));
  if (p >= json.size() || json[p] != '"') {
    return InvalidArgument("expected string for key: " + key);
  }
  std::string out;
  for (++p; p < json.size(); ++p) {
    if (json[p] == '\\' && p + 1 < json.size()) {
      out.push_back(json[++p]);
    } else if (json[p] == '"') {
      return out;
    } else {
      out.push_back(json[p]);
    }
  }
  return InvalidArgument("unterminated string for key: " + key);
}

Result<uint64_t> GetUInt(const std::string& json, const std::string& key) {
  CCNVME_ASSIGN_OR_RETURN(size_t p, ValueStart(json, key));
  size_t end = p;
  while (end < json.size() && std::isdigit(static_cast<unsigned char>(json[end])) != 0) {
    ++end;
  }
  if (end == p) {
    return InvalidArgument("expected number for key: " + key);
  }
  return std::stoull(json.substr(p, end - p));
}

Result<bool> GetBool(const std::string& json, const std::string& key) {
  CCNVME_ASSIGN_OR_RETURN(size_t p, ValueStart(json, key));
  if (json.compare(p, 4, "true") == 0) {
    return true;
  }
  if (json.compare(p, 5, "false") == 0) {
    return false;
  }
  return InvalidArgument("expected bool for key: " + key);
}

Result<std::vector<uint8_t>> GetByteArray(const std::string& json, const std::string& key) {
  CCNVME_ASSIGN_OR_RETURN(size_t p, ValueStart(json, key));
  if (p >= json.size() || json[p] != '[') {
    return InvalidArgument("expected array for key: " + key);
  }
  std::vector<uint8_t> out;
  uint32_t value = 0;
  bool in_number = false;
  for (++p; p < json.size(); ++p) {
    const char c = json[p];
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      value = value * 10 + static_cast<uint32_t>(c - '0');
      in_number = true;
    } else if (c == ',' || c == ']') {
      if (in_number) {
        if (value > 255) {
          return InvalidArgument("choice out of range in key: " + key);
        }
        out.push_back(static_cast<uint8_t>(value));
        value = 0;
        in_number = false;
      }
      if (c == ']') {
        return out;
      }
    } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      return InvalidArgument("bad array element for key: " + key);
    }
  }
  return InvalidArgument("unterminated array for key: " + key);
}

Result<std::vector<std::string>> GetStringArray(const std::string& json,
                                                const std::string& key) {
  CCNVME_ASSIGN_OR_RETURN(size_t p, ValueStart(json, key));
  if (p >= json.size() || json[p] != '[') {
    return InvalidArgument("expected array for key: " + key);
  }
  std::vector<std::string> out;
  for (++p; p < json.size(); ++p) {
    const char c = json[p];
    if (c == ']') {
      return out;
    }
    if (c == '"') {
      std::string s;
      for (++p; p < json.size() && json[p] != '"'; ++p) {
        if (json[p] == '\\' && p + 1 < json.size()) {
          ++p;
        }
        s.push_back(json[p]);
      }
      if (p >= json.size()) {
        return InvalidArgument("unterminated string in array for key: " + key);
      }
      out.push_back(std::move(s));
    } else if (c != ',' && std::isspace(static_cast<unsigned char>(c)) == 0) {
      return InvalidArgument("bad array element for key: " + key);
    }
  }
  return InvalidArgument("unterminated array for key: " + key);
}

}  // namespace

std::string ReplayArtifact::ToJson() const {
  std::ostringstream out;
  auto b = [](bool v) { return v ? "true" : "false"; };
  out << "{\n";
  out << "  \"version\": 1,\n";
  out << "  \"workload\": \"" << EscapeJson(workload) << "\",\n";
  out << "  \"ssd\": \"" << EscapeJson(config.ssd.name) << "\",\n";
  out << "  \"num_queues\": " << config.num_queues << ",\n";
  out << "  \"queue_depth\": " << config.queue_depth << ",\n";
  out << "  \"enable_ccnvme\": " << b(config.enable_ccnvme) << ",\n";
  out << "  \"tx_aware_mmio\": " << b(config.cc_options.tx_aware_mmio) << ",\n";
  out << "  \"in_order_completion\": " << b(config.cc_options.in_order_completion) << ",\n";
  out << "  \"fs_total_blocks\": " << config.fs_total_blocks << ",\n";
  out << "  \"journal\": \"" << JournalKindName(config.fs.journal) << "\",\n";
  out << "  \"journal_areas\": " << config.fs.journal_areas << ",\n";
  out << "  \"journal_blocks\": " << config.fs.journal_blocks << ",\n";
  out << "  \"data_journaling\": " << b(config.fs.data_journaling) << ",\n";
  out << "  \"metadata_shadow_paging\": " << b(config.fs.metadata_shadow_paging) << ",\n";
  out << "  \"selective_revocation\": " << b(config.fs.selective_revocation) << ",\n";
  out << "  \"test_skip_psq_window_scan\": " << b(config.fs.test_skip_psq_window_scan) << ",\n";
  out << "  \"test_skip_cross_core_order\": " << b(config.fs.test_skip_cross_core_order)
      << ",\n";
  out << "  \"test_skip_nvlog_fence\": " << b(config.fs.test_skip_nvlog_fence) << ",\n";
  out << "  \"nvm_enabled\": " << b(config.nvm.enabled) << ",\n";
  out << "  \"nvm_size_bytes\": " << config.nvm.size_bytes << ",\n";
  out << "  \"num_devices\": " << config.num_devices << ",\n";
  out << "  \"volume_kind\": \""
      << (config.volume.kind == VolumeKind::kMirror ? "mirror" : "stripe") << "\",\n";
  out << "  \"volume_chunk_blocks\": " << config.volume.chunk_blocks << ",\n";
  out << "  \"test_skip_volume_commit_gate\": " << b(config.volume.test_skip_volume_commit_gate)
      << ",\n";
  out << "  \"kv_enabled\": " << b(config.kv.enabled) << ",\n";
  out << "  \"kv_dir_slots\": " << config.kv.dir_slots << ",\n";
  out << "  \"kv_shadow_slots\": " << config.kv.shadow_slots << ",\n";
  out << "  \"kv_flash_pages\": " << config.kv.flash_pages << ",\n";
  out << "  \"kv_pages_per_block\": " << config.kv.pages_per_block << ",\n";
  out << "  \"kv_total_lpns\": " << config.kv.total_lpns << ",\n";
  out << "  \"kv_map_cache_segments\": " << config.kv.map_cache_segments << ",\n";
  out << "  \"kv_gc_free_blocks_low\": " << config.kv.gc_free_blocks_low << ",\n";
  out << "  \"kv_test_skip_ftl_shadow_commit\": " << b(config.kv.test_skip_ftl_shadow_commit)
      << ",\n";
  out << "  \"torn_seed\": " << torn_seed << ",\n";
  out << "  \"crash_index\": " << plan.crash_index << ",\n";
  out << "  \"choices\": [";
  for (size_t i = 0; i < plan.choices.size(); ++i) {
    out << (i == 0 ? "" : ",") << static_cast<uint32_t>(plan.choices[i]);
  }
  out << "],\n";
  out << "  \"failure\": \"" << EscapeJson(failure) << "\",\n";
  out << "  \"flight_recorder\": [";
  for (size_t i = 0; i < flight_recorder.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n    \"" << EscapeJson(flight_recorder[i]) << "\"";
  }
  out << (flight_recorder.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

Result<ReplayArtifact> ReplayArtifact::FromJson(const std::string& json) {
  ReplayArtifact art;
  CCNVME_ASSIGN_OR_RETURN(uint64_t version, GetUInt(json, "version"));
  if (version != 1) {
    return InvalidArgument("unsupported artifact version: " + std::to_string(version));
  }
  CCNVME_ASSIGN_OR_RETURN(art.workload, GetString(json, "workload"));
  CCNVME_ASSIGN_OR_RETURN(std::string ssd_name, GetString(json, "ssd"));
  CCNVME_ASSIGN_OR_RETURN(art.config.ssd, SsdByName(ssd_name));
  CCNVME_ASSIGN_OR_RETURN(uint64_t num_queues, GetUInt(json, "num_queues"));
  art.config.num_queues = static_cast<uint16_t>(num_queues);
  CCNVME_ASSIGN_OR_RETURN(uint64_t queue_depth, GetUInt(json, "queue_depth"));
  art.config.queue_depth = static_cast<uint16_t>(queue_depth);
  CCNVME_ASSIGN_OR_RETURN(art.config.enable_ccnvme, GetBool(json, "enable_ccnvme"));
  CCNVME_ASSIGN_OR_RETURN(art.config.cc_options.tx_aware_mmio, GetBool(json, "tx_aware_mmio"));
  CCNVME_ASSIGN_OR_RETURN(art.config.cc_options.in_order_completion,
                          GetBool(json, "in_order_completion"));
  CCNVME_ASSIGN_OR_RETURN(art.config.fs_total_blocks, GetUInt(json, "fs_total_blocks"));
  CCNVME_ASSIGN_OR_RETURN(std::string journal, GetString(json, "journal"));
  CCNVME_ASSIGN_OR_RETURN(art.config.fs.journal, ParseJournalKind(journal));
  CCNVME_ASSIGN_OR_RETURN(uint64_t areas, GetUInt(json, "journal_areas"));
  art.config.fs.journal_areas = static_cast<uint32_t>(areas);
  CCNVME_ASSIGN_OR_RETURN(art.config.fs.journal_blocks, GetUInt(json, "journal_blocks"));
  CCNVME_ASSIGN_OR_RETURN(art.config.fs.data_journaling, GetBool(json, "data_journaling"));
  CCNVME_ASSIGN_OR_RETURN(art.config.fs.metadata_shadow_paging,
                          GetBool(json, "metadata_shadow_paging"));
  CCNVME_ASSIGN_OR_RETURN(art.config.fs.selective_revocation,
                          GetBool(json, "selective_revocation"));
  CCNVME_ASSIGN_OR_RETURN(art.config.fs.test_skip_psq_window_scan,
                          GetBool(json, "test_skip_psq_window_scan"));
  // Optional (older artifacts predate cross-core fsync aggregation).
  if (Result<bool> cc = GetBool(json, "test_skip_cross_core_order"); cc.ok()) {
    art.config.fs.test_skip_cross_core_order = *cc;
  }
  // Optional NVM tier (older artifacts predate the NVLog architecture).
  if (Result<bool> nf = GetBool(json, "test_skip_nvlog_fence"); nf.ok()) {
    art.config.fs.test_skip_nvlog_fence = *nf;
  }
  if (Result<bool> ne = GetBool(json, "nvm_enabled"); ne.ok()) {
    art.config.nvm.enabled = *ne;
  }
  if (Result<uint64_t> ns = GetUInt(json, "nvm_size_bytes"); ns.ok()) {
    art.config.nvm.size_bytes = *ns;
  }
  if (art.config.fs.journal == JournalKind::kNvlog) {
    art.config.nvm.enabled = true;
  }
  // Optional volume geometry (older artifacts predate multi-device volumes).
  if (Result<uint64_t> nd = GetUInt(json, "num_devices"); nd.ok()) {
    art.config.num_devices = static_cast<uint16_t>(*nd);
  }
  if (Result<std::string> vk = GetString(json, "volume_kind"); vk.ok()) {
    if (*vk != "stripe" && *vk != "mirror") {
      return InvalidArgument("unknown volume kind: " + *vk);
    }
    art.config.volume.kind = *vk == "mirror" ? VolumeKind::kMirror : VolumeKind::kStripe;
  }
  if (Result<uint64_t> cb = GetUInt(json, "volume_chunk_blocks"); cb.ok()) {
    art.config.volume.chunk_blocks = static_cast<uint32_t>(*cb);
  }
  if (Result<bool> gate = GetBool(json, "test_skip_volume_commit_gate"); gate.ok()) {
    art.config.volume.test_skip_volume_commit_gate = *gate;
  }
  // Optional KV-native path (older artifacts predate the KV-SSD).
  if (Result<bool> ke = GetBool(json, "kv_enabled"); ke.ok()) {
    art.config.kv.enabled = *ke;
  }
  if (Result<uint64_t> v = GetUInt(json, "kv_dir_slots"); v.ok()) {
    art.config.kv.dir_slots = static_cast<uint32_t>(*v);
  }
  if (Result<uint64_t> v = GetUInt(json, "kv_shadow_slots"); v.ok()) {
    art.config.kv.shadow_slots = static_cast<uint32_t>(*v);
  }
  if (Result<uint64_t> v = GetUInt(json, "kv_flash_pages"); v.ok()) {
    art.config.kv.flash_pages = *v;
  }
  if (Result<uint64_t> v = GetUInt(json, "kv_pages_per_block"); v.ok()) {
    art.config.kv.pages_per_block = static_cast<uint32_t>(*v);
  }
  if (Result<uint64_t> v = GetUInt(json, "kv_total_lpns"); v.ok()) {
    art.config.kv.total_lpns = *v;
  }
  if (Result<uint64_t> v = GetUInt(json, "kv_map_cache_segments"); v.ok()) {
    art.config.kv.map_cache_segments = static_cast<uint32_t>(*v);
  }
  if (Result<uint64_t> v = GetUInt(json, "kv_gc_free_blocks_low"); v.ok()) {
    art.config.kv.gc_free_blocks_low = static_cast<uint32_t>(*v);
  }
  if (Result<bool> v = GetBool(json, "kv_test_skip_ftl_shadow_commit"); v.ok()) {
    art.config.kv.test_skip_ftl_shadow_commit = *v;
  }
  CCNVME_ASSIGN_OR_RETURN(art.torn_seed, GetUInt(json, "torn_seed"));
  CCNVME_ASSIGN_OR_RETURN(art.plan.crash_index, GetUInt(json, "crash_index"));
  CCNVME_ASSIGN_OR_RETURN(art.plan.choices, GetByteArray(json, "choices"));
  CCNVME_ASSIGN_OR_RETURN(art.failure, GetString(json, "failure"));
  // Optional (older artifacts predate the flight recorder).
  Result<std::vector<std::string>> tail = GetStringArray(json, "flight_recorder");
  if (tail.ok()) {
    art.flight_recorder = *std::move(tail);
  }
  return art;
}

Status ReplayArtifact::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InvalidArgument("cannot open artifact file for writing: " + path);
  }
  out << ToJson();
  out.close();
  if (!out) {
    return InvalidArgument("failed writing artifact file: " + path);
  }
  return OkStatus();
}

Result<ReplayArtifact> ReplayArtifact::ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound("cannot open artifact file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromJson(buf.str());
}

Result<std::string> ReplayArtifactCheck(const ReplayArtifact& artifact,
                                        std::string* metrics_json) {
  CCNVME_ASSIGN_OR_RETURN(CrashWorkload workload, FindCrashWorkload(artifact.workload));
  const CrashRecording rec = RecordWorkload(artifact.config, workload);
  return CheckCrashState(rec, artifact.plan, artifact.torn_seed, metrics_json);
}

}  // namespace ccnvme

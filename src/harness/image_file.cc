#include "src/harness/image_file.h"

#include <cstdio>

namespace ccnvme {

namespace {
constexpr uint32_t kImageMagic = 0x4D494343;  // "CCIM"
// v1: single device (media table + PMR). v2: a device count follows the
// block size, then v1's per-device payload repeated per member. v1 files
// load as one-device images. v3: a u64 NVM size + the NVM tier's durable
// bytes follow the devices; v1/v2 files load with an empty NVM image.
constexpr uint32_t kImageVersion = 3;
}  // namespace

Status SaveImage(const CrashImage& image, const std::string& path) {
  Buffer out;
  out.resize(16);
  PutU32(out, 0, kImageMagic);
  PutU32(out, 4, kImageVersion);
  PutU32(out, 8, kFsBlockSize);
  PutU32(out, 12, static_cast<uint32_t>(image.devices.size()));
  for (const DeviceImage& dev : image.devices) {
    size_t off = out.size();
    out.resize(off + 16);
    PutU64(out, off, dev.media.size());
    PutU64(out, off + 8, dev.pmr.size());
    for (const auto& [block, data] : dev.media) {
      if (data.size() != kFsBlockSize) {
        return Internal("media block " + std::to_string(block) + " has odd size");
      }
      off = out.size();
      out.resize(off + 8 + kFsBlockSize);
      PutU64(out, off, block);
      std::memcpy(out.data() + off + 8, data.data(), kFsBlockSize);
    }
    out.insert(out.end(), dev.pmr.begin(), dev.pmr.end());
  }
  {
    const size_t off = out.size();
    out.resize(off + 8);
    PutU64(out, off, image.nvm.size());
    out.insert(out.end(), image.nvm.begin(), image.nvm.end());
  }
  const uint64_t csum = Fnv1a(out);
  const size_t off = out.size();
  out.resize(off + 8);
  PutU64(out, off, csum);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return IoError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (written != out.size()) {
    return IoError("short write to " + path);
  }
  return OkStatus();
}

Result<CrashImage> LoadImage(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return IoError("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 24) {
    std::fclose(f);
    return Corruption("image file too small");
  }
  Buffer raw(static_cast<size_t>(size));
  const size_t read = std::fread(raw.data(), 1, raw.size(), f);
  std::fclose(f);
  if (read != raw.size()) {
    return IoError("short read from " + path);
  }

  const uint64_t want = GetU64(raw, raw.size() - 8);
  if (Fnv1a(std::span<const uint8_t>(raw).subspan(0, raw.size() - 8)) != want) {
    return Corruption("image checksum mismatch");
  }
  if (GetU32(raw, 0) != kImageMagic) {
    return Corruption("bad image magic");
  }
  const uint32_t version = GetU32(raw, 4);
  if (version != 1 && version != 2 && version != 3) {
    return NotSupported("unsupported image version");
  }
  if (GetU32(raw, 8) != kFsBlockSize) {
    return NotSupported("image block size mismatch");
  }
  const size_t payload_end = raw.size() - 8;
  size_t off = version == 1 ? 12 : 16;
  const uint32_t num_devices = version == 1 ? 1 : GetU32(raw, 12);
  if (num_devices == 0) {
    return Corruption("image has no devices");
  }

  CrashImage image;
  image.devices.resize(num_devices);
  for (uint32_t d = 0; d < num_devices; ++d) {
    if (off + 16 > payload_end) {
      return Corruption("image truncated in device header");
    }
    const uint64_t num_blocks = GetU64(raw, off);
    const uint64_t pmr_size = GetU64(raw, off + 8);
    off += 16;
    // Divide/subtract instead of adding to |off| — huge u64 counts in a
    // corrupt header would wrap the sum past the bound check.
    const uint64_t avail = payload_end - off;
    if (num_blocks > avail / (8 + kFsBlockSize) ||
        pmr_size > avail - num_blocks * (8 + kFsBlockSize)) {
      return Corruption("image size inconsistent with header");
    }
    for (uint64_t i = 0; i < num_blocks; ++i) {
      const uint64_t block = GetU64(raw, off);
      Buffer data(raw.begin() + static_cast<long>(off + 8),
                  raw.begin() + static_cast<long>(off + 8 + kFsBlockSize));
      image.devices[d].media.emplace(block, std::move(data));
      off += 8 + kFsBlockSize;
    }
    image.devices[d].pmr.assign(raw.begin() + static_cast<long>(off),
                                raw.begin() + static_cast<long>(off + pmr_size));
    off += pmr_size;
  }
  if (version >= 3) {
    if (off + 8 > payload_end) {
      return Corruption("image truncated in NVM header");
    }
    const uint64_t nvm_size = GetU64(raw, off);
    off += 8;
    if (nvm_size > payload_end - off) {
      return Corruption("image truncated in NVM payload");
    }
    image.nvm.assign(raw.begin() + static_cast<long>(off),
                     raw.begin() + static_cast<long>(off + nvm_size));
    off += nvm_size;
  }
  if (off != payload_end) {
    return Corruption("image size inconsistent with header");
  }
  return image;
}

}  // namespace ccnvme

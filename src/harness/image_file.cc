#include "src/harness/image_file.h"

#include <cstdio>

namespace ccnvme {

namespace {
constexpr uint32_t kImageMagic = 0x4D494343;  // "CCIM"
constexpr uint32_t kImageVersion = 1;
}  // namespace

Status SaveImage(const CrashImage& image, const std::string& path) {
  Buffer out;
  out.resize(28);
  PutU32(out, 0, kImageMagic);
  PutU32(out, 4, kImageVersion);
  PutU32(out, 8, kFsBlockSize);
  PutU64(out, 12, image.media.size());
  PutU64(out, 20, image.pmr.size());
  for (const auto& [block, data] : image.media) {
    if (data.size() != kFsBlockSize) {
      return Internal("media block " + std::to_string(block) + " has odd size");
    }
    const size_t off = out.size();
    out.resize(off + 8 + kFsBlockSize);
    PutU64(out, off, block);
    std::memcpy(out.data() + off + 8, data.data(), kFsBlockSize);
  }
  out.insert(out.end(), image.pmr.begin(), image.pmr.end());
  const uint64_t csum = Fnv1a(out);
  const size_t off = out.size();
  out.resize(off + 8);
  PutU64(out, off, csum);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return IoError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (written != out.size()) {
    return IoError("short write to " + path);
  }
  return OkStatus();
}

Result<CrashImage> LoadImage(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return IoError("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 36) {
    std::fclose(f);
    return Corruption("image file too small");
  }
  Buffer raw(static_cast<size_t>(size));
  const size_t read = std::fread(raw.data(), 1, raw.size(), f);
  std::fclose(f);
  if (read != raw.size()) {
    return IoError("short read from " + path);
  }

  const uint64_t want = GetU64(raw, raw.size() - 8);
  if (Fnv1a(std::span<const uint8_t>(raw).subspan(0, raw.size() - 8)) != want) {
    return Corruption("image checksum mismatch");
  }
  if (GetU32(raw, 0) != kImageMagic) {
    return Corruption("bad image magic");
  }
  if (GetU32(raw, 4) != kImageVersion) {
    return NotSupported("unsupported image version");
  }
  if (GetU32(raw, 8) != kFsBlockSize) {
    return NotSupported("image block size mismatch");
  }
  const uint64_t num_blocks = GetU64(raw, 12);
  const uint64_t pmr_size = GetU64(raw, 20);
  const size_t expect = 28 + num_blocks * (8 + kFsBlockSize) + pmr_size + 8;
  if (raw.size() != expect) {
    return Corruption("image size inconsistent with header");
  }

  CrashImage image;
  size_t off = 28;
  for (uint64_t i = 0; i < num_blocks; ++i) {
    const uint64_t block = GetU64(raw, off);
    Buffer data(raw.begin() + static_cast<long>(off + 8),
                raw.begin() + static_cast<long>(off + 8 + kFsBlockSize));
    image.media.emplace(block, std::move(data));
    off += 8 + kFsBlockSize;
  }
  image.pmr.assign(raw.begin() + static_cast<long>(off),
                   raw.begin() + static_cast<long>(off + pmr_size));
  return image;
}

}  // namespace ccnvme

// N-core host model: per-core run queues over the storage stack.
//
// The paper's headline claim is multi-queue scalability, which only shows
// up when the *host* side is modeled as N cores each multiplexing many
// concurrent clients — not as one actor per client. HostModel provides
// exactly that:
//
//   * N cores, each with a FIFO run queue of clients and a small number of
//     hardware contexts (worker actors). A context picks the next runnable
//     client, runs ONE operation (which may block in virtual time on I/O),
//     then requeues the client — the way a kernel run queue timeslices
//     blocked-on-IO threads onto a core.
//   * Every context of core c binds hardware queue (c % num_queues), so all
//     of a core's ccNVMe transactions flow through that core's NVMe SQ/CQ
//     pair and P-SQ stream (§4.5's no-migration rule by construction).
//   * Thousands of clients per device multiplex deterministically: the run
//     queues are FIFO, the simulator runs exactly one actor at a time, and
//     no scheduling step consumes virtual time unless a context-switch cost
//     is configured — so a run is a pure function of (seed, core count).
//
// With one client per context the model degenerates to the pre-host-model
// harness (one actor per workload thread) with an identical virtual-time
// schedule; tests/multicore_test.cc pins both properties down.
#ifndef SRC_HARNESS_HOST_MODEL_H_
#define SRC_HARNESS_HOST_MODEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/stack.h"
#include "src/sim/sync.h"

namespace ccnvme {

struct HostModelConfig {
  uint16_t num_cores = 1;
  // Hardware contexts (worker actors) per core: how many of the core's
  // clients may be blocked in the kernel/device concurrently. 1 models a
  // strictly serial core (synchronous I/O).
  uint16_t contexts_per_core = 1;
  // Exact total context count, distributed round-robin across cores
  // (0 = num_cores * contexts_per_core). Lets the legacy "N threads on M
  // queues" workloads map exactly onto the core model.
  uint32_t total_contexts = 0;
  // CPU cost charged when a context switches to a different client.
  // 0 keeps scheduling free of virtual time (the pre-host-model behavior).
  uint64_t context_switch_ns = 0;
};

class HostModel {
 public:
  // One scheduling quantum of a client: run one operation (it may block in
  // virtual time). Return true to be requeued, false when the client is done.
  using ClientOp = std::function<bool()>;

  static constexpr uint16_t kAnyCore = 0xffff;

  HostModel(StorageStack* stack, const HostModelConfig& config);

  // Registers a client on |core| (kAnyCore = round-robin by registration
  // order). Must be called before Start()/Run().
  void AddClient(std::string name, ClientOp op, uint16_t core = kAnyCore);

  // Spawns every core's context actors. Use when the caller drives
  // sim().Run() itself (e.g. alongside other actors).
  void Start();
  // Start() + sim().Run(): returns when every client has retired.
  void Run();

  uint16_t num_cores() const { return static_cast<uint16_t>(cores_.size()); }
  uint32_t num_clients() const { return static_cast<uint32_t>(clients_.size()); }
  // Scheduling quanta executed on |core| (one per client operation).
  uint64_t quanta(uint16_t core) const { return cores_[core]->quanta; }
  // Times a context on |core| picked a different client than it ran last.
  uint64_t client_switches(uint16_t core) const { return cores_[core]->switches; }

  HostModel(const HostModel&) = delete;
  HostModel& operator=(const HostModel&) = delete;

 private:
  struct Client {
    std::string name;
    ClientOp op;
    uint16_t core = 0;
  };
  struct Core {
    explicit Core(Simulator* sim) : mu(sim), work(sim) {}
    std::deque<size_t> runq;  // indices into clients_, FIFO
    SimMutex mu;
    SimCondVar work;
    uint32_t live = 0;  // clients bound here that have not retired
    uint64_t quanta = 0;
    uint64_t switches = 0;
  };

  void ContextLoop(uint16_t core, uint32_t context);

  StorageStack* stack_;
  HostModelConfig config_;
  std::vector<Client> clients_;
  std::vector<std::unique_ptr<Core>> cores_;
  // Last client index each context ran, keyed by (core, context), for the
  // context-switch charge. Sized at Start().
  std::vector<std::vector<size_t>> last_client_;
  bool started_ = false;
};

}  // namespace ccnvme

#endif  // SRC_HARNESS_HOST_MODEL_H_

// Full-stack test bench: wires simulator, PCIe link, SSD, NVMe controller,
// host drivers, block layer and (optionally) a mounted file system into one
// object, with crash/remount support.
//
// Used by the unit/integration tests, the CrashMonkey-style tester, the
// benchmark binaries and the examples — it is the "server in the lab".
#ifndef SRC_HARNESS_STACK_H_
#define SRC_HARNESS_STACK_H_

#include <functional>
#include <memory>

#include <vector>

#include "src/block/block_layer.h"
#include "src/driver/kv_driver.h"
#include "src/driver/opimq.h"
#include "src/extfs/extfs.h"
#include "src/metrics/export.h"
#include "src/metrics/metrics.h"
#include "src/nvm/nvm_device.h"
#include "src/nvme/kv_ssd.h"
#include "src/pcie/pcie_link.h"
#include "src/profile/critical_path.h"
#include "src/trace/tracer.h"
#include "src/volume/volume.h"

namespace ccnvme {

struct StackConfig {
  SsdConfig ssd = SsdConfig::Optane905P();
  // Interconnect timing (doorbell MMIO cost, WC buffer, DMA bandwidth).
  PcieConfig pcie;
  uint16_t num_queues = 1;
  bool enable_ccnvme = true;
  uint16_t queue_depth = 256;
  HostCosts costs;
  CcNvmeOptions cc_options;
  // Device size in 4 KB blocks (default 1 GB — plenty for the workloads and
  // cheap to simulate).
  uint64_t fs_total_blocks = 256 * 1024;
  ExtFsOptions fs;
  // Number of member devices. 1 = classic single-device stack; >1 binds the
  // devices (each with its own link/SSD/controller/drivers) into one
  // crash-consistent volume per |volume|.
  uint16_t num_devices = 1;
  VolumeConfig volume;
  // Byte-addressable NVM tier (NVLog). Created when |nvm.enabled| or the
  // file system selects JournalKind::kNvlog.
  NvmConfig nvm;
  // KV-native device path (demand-paged FTL + NVMe KV command set). When
  // |kv.enabled| the stack builds a KvSsd over device 0's flash + PMR and a
  // KvNvmeDriver on top; single-device stacks only.
  KvSsdConfig kv;
};

// One member device's durable bytes: media durable view + PMR.
struct DeviceImage {
  MediaStore::BlockMap media;
  Buffer pmr;
};

// The durable bytes that survive a power cut, one entry per member device
// (single-device stacks use devices[0] via the accessors).
struct CrashImage {
  std::vector<DeviceImage> devices;
  // Durable view of the byte-addressable NVM tier; empty when the stack has
  // none. Like the PMR, NVM contents survive power loss by design — only
  // unfenced stores are at the crash explorer's mercy.
  Buffer nvm;

  CrashImage() : devices(1) {}
  MediaStore::BlockMap& media() { return devices[0].media; }
  const MediaStore::BlockMap& media() const { return devices[0].media; }
  Buffer& pmr() { return devices[0].pmr; }
  const Buffer& pmr() const { return devices[0].pmr; }
};

class StorageStack {
 public:
  explicit StorageStack(const StackConfig& config);
  ~StorageStack();

  // Builds a stack whose device boots from |image| (post-crash state).
  StorageStack(const StackConfig& config, const CrashImage& image);

  // Formats and mounts a fresh file system (runs inside an actor).
  Status MkfsAndMount();
  // Mounts the existing on-media file system (post-crash: runs recovery).
  Status MountExisting();
  Status Unmount();

  // KV-native path equivalents (config().kv.enabled stacks; runs inside an
  // actor like MkfsAndMount/MountExisting).
  Status KvFormat();
  Status KvAttach();

  // Captures what a power cut right now would leave behind. With a
  // volatile-cache drive, pending cached writes are LOST (the conservative
  // image); the crash tester explores survivor subsets itself.
  CrashImage CaptureCrashImage() const;

  // Convenience: spawns |body| as an actor bound to queue/core |queue| and
  // runs the simulation until idle.
  void Run(std::function<void()> body, uint16_t queue = 0);
  // Spawn without running (for multi-actor setups); call sim().Run() after.
  void Spawn(const std::string& name, std::function<void()> body, uint16_t queue = 0);

  // Installs |recorder| on every event source in the stack: the block layer
  // (media bios + completions) and, when present, the ccNVMe driver (PMR
  // stores, fences, doorbell rings, head advances). The two domains share
  // one stream so a crash tester sees their true interleaving.
  void SetRecorder(BioRecorder recorder);

  // Creates a Tracer and attaches it to the simulator so every layer's
  // instrumentation points fire. Idempotent (the first call's capacity
  // wins); the tracer lives as long as the stack.
  Tracer& EnableTracing(size_t ring_capacity = Tracer::kDefaultRingCapacity);
  // The attached tracer, or nullptr when tracing was never enabled.
  Tracer* tracer() { return tracer_.get(); }

  // Creates the metrics engine (registry + invariant monitors) and attaches
  // it to the simulator. Implies EnableTracing — phase attribution is fed
  // from completed trace spans. Idempotent; lives as long as the stack.
  // Also enabled automatically when $CCNVME_METRICS is set (see Build), in
  // which case the destructor appends one compact JSON snapshot line to the
  // named file ("1"/empty = stderr) — benches get dumps with zero changes.
  Metrics& EnableMetrics();
  // The attached metrics engine, or nullptr when never enabled.
  Metrics* metrics() { return metrics_.get(); }

  // Creates a causal critical-path profiler and hooks it onto the tracer's
  // sink (implies EnableTracing). Pure observer: virtual time is
  // byte-identical with profiling on or off. Idempotent (the first call's
  // options win); lives as long as the stack.
  CriticalPathProfiler& EnableProfiling(ProfilerOptions options = {});
  // The attached profiler, or nullptr when never enabled.
  CriticalPathProfiler* profiler() { return profiler_.get(); }

  Simulator& sim() { return *sim_; }
  // Device-0 accessors (the only device on classic stacks).
  PcieLink& link() { return *links_[0]; }
  SsdModel& ssd() { return *ssds_[0]; }
  NvmeController& controller() { return *controllers_[0]; }
  NvmeDriver& nvme() { return *nvmes_[0]; }
  CcNvmeDriver* ccnvme() { return ccs_[0].get(); }
  // Order-preserving submission driver (OPIMQ-style engine); always present.
  OpimqDriver& opimq() { return *opimqs_[0]; }
  // Per-member accessors for multi-device stacks.
  uint16_t num_devices() const { return static_cast<uint16_t>(ssds_.size()); }
  SsdModel& ssd(uint16_t device) { return *ssds_[device]; }
  NvmeController& controller(uint16_t device) { return *controllers_[device]; }
  NvmeDriver& nvme(uint16_t device) { return *nvmes_[device]; }
  CcNvmeDriver* ccnvme(uint16_t device) { return ccs_[device].get(); }
  OpimqDriver& opimq(uint16_t device) { return *opimqs_[device]; }
  // The volume binding the members, or nullptr on single-device stacks.
  Volume* volume() { return volume_.get(); }
  // The byte-addressable NVM tier, or nullptr when the stack has none.
  NvmDevice* nvm_device() { return nvm_.get(); }
  // The KV-native device path, or nullptr when config.kv.enabled is false.
  KvSsd* kv_ssd() { return kv_ssd_.get(); }
  KvNvmeDriver* kv_driver() { return kv_driver_.get(); }
  BlockLayer& blk() { return *blk_; }
  ExtFs& fs() { return *fs_; }
  const StackConfig& config() const { return config_; }

 private:
  void Build(const CrashImage* image);

  StackConfig config_;
  // Declared before sim_ so they outlive the simulator during member
  // destruction: Shutdown() (run in ~StorageStack's body) unwinds actors
  // whose RAII spans still call into the tracer/metrics.
  std::unique_ptr<Metrics> metrics_;
  std::unique_ptr<CriticalPathProfiler> profiler_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<Simulator> sim_;
  // Non-empty when $CCNVME_METRICS requested an automatic end-of-run dump.
  std::string metrics_dump_path_;
  std::vector<std::unique_ptr<PcieLink>> links_;
  std::vector<std::unique_ptr<SsdModel>> ssds_;
  std::vector<std::unique_ptr<NvmeController>> controllers_;
  std::vector<std::unique_ptr<NvmeDriver>> nvmes_;
  std::vector<std::unique_ptr<CcNvmeDriver>> ccs_;
  std::vector<std::unique_ptr<OpimqDriver>> opimqs_;
  std::unique_ptr<Volume> volume_;
  std::unique_ptr<NvmDevice> nvm_;
  std::unique_ptr<KvSsd> kv_ssd_;
  std::unique_ptr<KvNvmeDriver> kv_driver_;
  std::unique_ptr<BlockLayer> blk_;
  std::unique_ptr<ExtFs> fs_;
};

}  // namespace ccnvme

#endif  // SRC_HARNESS_STACK_H_

// Full-stack test bench: wires simulator, PCIe link, SSD, NVMe controller,
// host drivers, block layer and (optionally) a mounted file system into one
// object, with crash/remount support.
//
// Used by the unit/integration tests, the CrashMonkey-style tester, the
// benchmark binaries and the examples — it is the "server in the lab".
#ifndef SRC_HARNESS_STACK_H_
#define SRC_HARNESS_STACK_H_

#include <functional>
#include <memory>

#include "src/block/block_layer.h"
#include "src/extfs/extfs.h"
#include "src/trace/tracer.h"

namespace ccnvme {

struct StackConfig {
  SsdConfig ssd = SsdConfig::Optane905P();
  uint16_t num_queues = 1;
  bool enable_ccnvme = true;
  uint16_t queue_depth = 256;
  HostCosts costs;
  CcNvmeOptions cc_options;
  // Device size in 4 KB blocks (default 1 GB — plenty for the workloads and
  // cheap to simulate).
  uint64_t fs_total_blocks = 256 * 1024;
  ExtFsOptions fs;
};

// The durable bytes that survive a power cut: media durable view + PMR.
struct CrashImage {
  MediaStore::BlockMap media;
  Buffer pmr;
};

class StorageStack {
 public:
  explicit StorageStack(const StackConfig& config);
  ~StorageStack();

  // Builds a stack whose device boots from |image| (post-crash state).
  StorageStack(const StackConfig& config, const CrashImage& image);

  // Formats and mounts a fresh file system (runs inside an actor).
  Status MkfsAndMount();
  // Mounts the existing on-media file system (post-crash: runs recovery).
  Status MountExisting();
  Status Unmount();

  // Captures what a power cut right now would leave behind. With a
  // volatile-cache drive, pending cached writes are LOST (the conservative
  // image); the crash tester explores survivor subsets itself.
  CrashImage CaptureCrashImage() const;

  // Convenience: spawns |body| as an actor bound to queue/core |queue| and
  // runs the simulation until idle.
  void Run(std::function<void()> body, uint16_t queue = 0);
  // Spawn without running (for multi-actor setups); call sim().Run() after.
  void Spawn(const std::string& name, std::function<void()> body, uint16_t queue = 0);

  // Installs |recorder| on every event source in the stack: the block layer
  // (media bios + completions) and, when present, the ccNVMe driver (PMR
  // stores, fences, doorbell rings, head advances). The two domains share
  // one stream so a crash tester sees their true interleaving.
  void SetRecorder(BioRecorder recorder);

  // Creates a Tracer and attaches it to the simulator so every layer's
  // instrumentation points fire. Idempotent (the first call's capacity
  // wins); the tracer lives as long as the stack.
  Tracer& EnableTracing(size_t ring_capacity = Tracer::kDefaultRingCapacity);
  // The attached tracer, or nullptr when tracing was never enabled.
  Tracer* tracer() { return tracer_.get(); }

  Simulator& sim() { return *sim_; }
  PcieLink& link() { return *link_; }
  SsdModel& ssd() { return *ssd_; }
  NvmeController& controller() { return *controller_; }
  NvmeDriver& nvme() { return *nvme_; }
  CcNvmeDriver* ccnvme() { return cc_.get(); }
  BlockLayer& blk() { return *blk_; }
  ExtFs& fs() { return *fs_; }
  const StackConfig& config() const { return config_; }

 private:
  void Build(const CrashImage* image);

  StackConfig config_;
  // Declared before sim_ so it outlives the simulator during member
  // destruction: Shutdown() (run in ~StorageStack's body) unwinds actors
  // whose RAII spans still call into the tracer.
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<PcieLink> link_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<NvmeController> controller_;
  std::unique_ptr<NvmeDriver> nvme_;
  std::unique_ptr<CcNvmeDriver> cc_;
  std::unique_ptr<BlockLayer> blk_;
  std::unique_ptr<ExtFs> fs_;
};

}  // namespace ccnvme

#endif  // SRC_HARNESS_STACK_H_

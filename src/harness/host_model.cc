#include "src/harness/host_model.h"

#include "src/common/logging.h"

namespace ccnvme {

HostModel::HostModel(StorageStack* stack, const HostModelConfig& config)
    : stack_(stack), config_(config) {
  config_.num_cores = std::max<uint16_t>(1, config_.num_cores);
  config_.contexts_per_core = std::max<uint16_t>(1, config_.contexts_per_core);
  if (config_.total_contexts == 0) {
    config_.total_contexts =
        static_cast<uint32_t>(config_.num_cores) * config_.contexts_per_core;
  }
  for (uint16_t c = 0; c < config_.num_cores; ++c) {
    cores_.push_back(std::make_unique<Core>(&stack_->sim()));
  }
}

void HostModel::AddClient(std::string name, ClientOp op, uint16_t core) {
  CCNVME_CHECK(!started_) << "AddClient after Start";
  if (core == kAnyCore) {
    core = static_cast<uint16_t>(clients_.size() % cores_.size());
  }
  CCNVME_CHECK_LT(core, cores_.size());
  clients_.push_back(Client{std::move(name), std::move(op), core});
  Core& c = *cores_[core];
  c.runq.push_back(clients_.size() - 1);
  c.live++;
}

void HostModel::Start() {
  CCNVME_CHECK(!started_) << "Start called twice";
  started_ = true;
  // Every core that has clients needs at least one context, or its run
  // queue would sit unserved forever.
  std::vector<uint32_t> contexts(cores_.size(), 0);
  for (uint32_t j = 0; j < config_.total_contexts; ++j) {
    contexts[j % cores_.size()]++;
  }
  for (size_t c = 0; c < cores_.size(); ++c) {
    CCNVME_CHECK(cores_[c]->live == 0 || contexts[c] > 0)
        << "core " << c << " has clients but no hardware context";
  }
  last_client_.resize(cores_.size());
  for (size_t c = 0; c < cores_.size(); ++c) {
    last_client_[c].assign(contexts[c], SIZE_MAX);
  }
  // Contexts spawn in global round-robin order so context j of the legacy
  // "N threads" mapping (total_contexts = N) is spawned exactly when thread
  // j used to be.
  std::vector<uint32_t> next_context(cores_.size(), 0);
  const uint16_t num_queues = stack_->config().num_queues;
  for (uint32_t j = 0; j < config_.total_contexts; ++j) {
    const uint16_t core = static_cast<uint16_t>(j % cores_.size());
    const uint32_t context = next_context[core]++;
    const uint16_t queue = static_cast<uint16_t>(core % num_queues);
    stack_->Spawn("core" + std::to_string(core) + ".ctx" + std::to_string(context),
                  [this, core, context] { ContextLoop(core, context); }, queue);
  }
}

void HostModel::Run() {
  Start();
  stack_->sim().Run();
  for (size_t c = 0; c < cores_.size(); ++c) {
    CCNVME_CHECK_EQ(cores_[c]->live, 0u)
        << "core " << c << " retired with unfinished clients";
  }
}

void HostModel::ContextLoop(uint16_t core, uint32_t context) {
  Core& c = *cores_[core];
  size_t& last = last_client_[core][context];
  for (;;) {
    c.mu.Lock();
    while (c.runq.empty() && c.live > 0) {
      c.work.Wait(c.mu);
    }
    if (c.runq.empty()) {
      // live == 0: every client of this core has retired.
      c.mu.Unlock();
      return;
    }
    const size_t idx = c.runq.front();
    c.runq.pop_front();
    c.mu.Unlock();

    if (last != idx) {
      if (last != SIZE_MAX) {
        c.switches++;
        if (config_.context_switch_ns > 0) {
          Simulator::Sleep(config_.context_switch_ns);
        }
      }
      last = idx;
    }
    c.quanta++;
    const bool more = clients_[idx].op();

    c.mu.Lock();
    if (more) {
      c.runq.push_back(idx);
      c.mu.Unlock();
      c.work.NotifyOne();
    } else {
      c.live--;
      const bool drained = c.live == 0;
      c.mu.Unlock();
      if (drained) {
        c.work.NotifyAll();
      }
    }
  }
}

}  // namespace ccnvme

// Disk-image files: serialize a CrashImage (durable media blocks + PMR) to
// a file and back. This is what lets the CLI tools (mkfs_ccnvme,
// fsck_ccnvme, journal_inspect) and long-lived experiments operate on
// persistent images, and lets a crash state be archived and examined.
//
// Format (little-endian):
//   [0..3]   magic "CCIM"
//   [4..7]   version (1)
//   [8..11]  block size
//   [12..19] number of media blocks
//   [20..27] pmr size in bytes
//   then per block: u64 block number + block payload
//   then the PMR bytes
//   then (v3) a u64 NVM size + the NVM tier's durable bytes
//   finally a u64 FNV-1a checksum of everything before it
#ifndef SRC_HARNESS_IMAGE_FILE_H_
#define SRC_HARNESS_IMAGE_FILE_H_

#include <string>

#include "src/common/status.h"
#include "src/harness/stack.h"

namespace ccnvme {

Status SaveImage(const CrashImage& image, const std::string& path);
Result<CrashImage> LoadImage(const std::string& path);

}  // namespace ccnvme

#endif  // SRC_HARNESS_IMAGE_FILE_H_

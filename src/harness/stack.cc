#include "src/harness/stack.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"

namespace ccnvme {

StorageStack::StorageStack(const StackConfig& config) : config_(config) { Build(nullptr); }

StorageStack::StorageStack(const StackConfig& config, const CrashImage& image)
    : config_(config) {
  Build(&image);
}

StorageStack::~StorageStack() {
  if (sim_ != nullptr) {
    sim_->Shutdown();
  }
  if (metrics_ != nullptr && !metrics_dump_path_.empty()) {
    // Automatic end-of-run dump ($CCNVME_METRICS): append one compact JSON
    // line per stack so a bench sweep accumulates a JSONL file that
    // tools/metrics_report and the CI violation gate consume.
    const std::string line = ExportJson(metrics_->TakeSnapshot(), /*pretty=*/false);
    if (metrics_dump_path_ == "1" || metrics_dump_path_ == "-") {
      std::fprintf(stderr, "%s\n", line.c_str());
    } else if (std::FILE* f = std::fopen(metrics_dump_path_.c_str(), "a")) {
      std::fprintf(f, "%s\n", line.c_str());
      std::fclose(f);
    }
  }
}

void StorageStack::Build(const CrashImage* image) {
  // Every member device is provisioned for the whole volume address space:
  // the media store is sparse, so over-provisioning a striped member costs
  // nothing and keeps the geometry arithmetic out of the capacity clamp.
  config_.ssd.capacity_bytes =
      std::max<uint64_t>(config_.ssd.capacity_bytes, config_.fs_total_blocks * kFsBlockSize);
  const uint16_t n = std::max<uint16_t>(1, config_.num_devices);
  config_.num_devices = n;
  sim_ = std::make_unique<Simulator>();

  if (image != nullptr) {
    CCNVME_CHECK_EQ(image->devices.size(), static_cast<size_t>(n))
        << "crash image device count does not match the stack config";
  }

  std::vector<Volume::Member> members;
  for (uint16_t d = 0; d < n; ++d) {
    links_.push_back(std::make_unique<PcieLink>(sim_.get(), config_.pcie));
    ssds_.push_back(std::make_unique<SsdModel>(sim_.get(), config_.ssd));

    NvmeControllerConfig ctrl_cfg;
    ctrl_cfg.num_io_queues = config_.num_queues;
    ctrl_cfg.queue_depth = config_.queue_depth;
    controllers_.push_back(std::make_unique<NvmeController>(sim_.get(), links_[d].get(),
                                                            ssds_[d].get(), ctrl_cfg));

    if (image != nullptr) {
      ssds_[d]->media().LoadDurable(image->devices[d].media);
      // PMR contents survive power loss by design (§4.4).
      CCNVME_CHECK_EQ(image->devices[d].pmr.size(), controllers_[d]->pmr().size());
      controllers_[d]->pmr().Write(0, image->devices[d].pmr);
    }

    NvmeDriverConfig drv_cfg;
    drv_cfg.num_queues = config_.num_queues;
    drv_cfg.costs = config_.costs;
    nvmes_.push_back(std::make_unique<NvmeDriver>(sim_.get(), links_[d].get(),
                                                  controllers_[d].get(), drv_cfg));

    if (config_.enable_ccnvme) {
      CcNvmeOptions cc_opts = config_.cc_options;
      cc_opts.num_queues = config_.num_queues;
      ccs_.push_back(std::make_unique<CcNvmeDriver>(sim_.get(), links_[d].get(),
                                                    controllers_[d].get(), config_.costs,
                                                    cc_opts));
      ccs_[d]->set_device_id(d);
    } else {
      ccs_.push_back(nullptr);
    }
    opimqs_.push_back(std::make_unique<OpimqDriver>(
        sim_.get(), nvmes_[d].get(),
        config_.ssd.volatile_cache && !config_.ssd.power_loss_protection));
    members.push_back(Volume::Member{nvmes_[d].get(), ccs_[d].get(), ssds_[d].get()});
  }

  if (n > 1) {
    if (image != nullptr && config_.volume.kind == VolumeKind::kMirror) {
      // Mirror legs can diverge across a crash (one leg's doorbell rung,
      // another's not). Reads are served by the primary leg, so resync the
      // others from leg 0's durable media before anything is mounted. Each
      // leg's PMR is left alone — recovery scans the union of the members'
      // real [P-SQ-head, P-SQDB) windows.
      for (uint16_t d = 1; d < n; ++d) {
        ssds_[d]->media().LoadDurable(image->devices[0].media);
      }
    }
    volume_ = std::make_unique<Volume>(sim_.get(), config_.volume, std::move(members));
  }

  blk_ = std::make_unique<BlockLayer>(sim_.get(), nvmes_[0].get(), ccs_[0].get(),
                                      config_.costs);
  if (volume_ != nullptr) {
    blk_->set_volume(volume_.get());
  }
  if (config_.nvm.enabled || config_.fs.journal == JournalKind::kNvlog) {
    config_.nvm.enabled = true;
    if (image != nullptr && !image->nvm.empty()) {
      // NVM contents survive power loss by design; boot from the image.
      config_.nvm.size_bytes = image->nvm.size();
      nvm_ = std::make_unique<NvmDevice>(sim_.get(), config_.nvm, image->nvm);
    } else {
      nvm_ = std::make_unique<NvmDevice>(sim_.get(), config_.nvm);
    }
    blk_->set_nvm(nvm_.get());
  }
  fs_ = std::make_unique<ExtFs>(sim_.get(), blk_.get(), config_.costs, config_.fs);

  if (config_.kv.enabled) {
    CCNVME_CHECK_EQ(n, 1) << "the KV-native path is a single-device architecture";
    kv_ssd_ = std::make_unique<KvSsd>(sim_.get(), ssds_[0].get(),
                                      &controllers_[0]->pmr(), config_.kv);
    controllers_[0]->set_kv_ssd(kv_ssd_.get());
    kv_driver_ = std::make_unique<KvNvmeDriver>(sim_.get(), nvmes_[0].get());
  }

  if (const char* env = std::getenv("CCNVME_METRICS"); env != nullptr && *env != '\0') {
    metrics_dump_path_ = env;
    EnableMetrics();
  }
}

Status StorageStack::MkfsAndMount() {
  Status result = OkStatus();
  Run([&] {
    result = ExtFs::Mkfs(sim_.get(), blk_.get(), config_.fs_total_blocks, config_.fs);
    if (result.ok()) {
      result = fs_->Mount();
    }
  });
  return result;
}

Status StorageStack::MountExisting() {
  Status result = OkStatus();
  Run([&] { result = fs_->Mount(); });
  return result;
}

Status StorageStack::Unmount() {
  Status result = OkStatus();
  Run([&] { result = fs_->Unmount(); });
  return result;
}

Status StorageStack::KvFormat() {
  CCNVME_CHECK(kv_ssd_ != nullptr) << "stack built without config.kv.enabled";
  Status result = OkStatus();
  Run([&] { result = kv_ssd_->Format(); });
  return result;
}

Status StorageStack::KvAttach() {
  CCNVME_CHECK(kv_ssd_ != nullptr) << "stack built without config.kv.enabled";
  Status result = OkStatus();
  Run([&] { result = kv_ssd_->Attach(); });
  return result;
}

Tracer& StorageStack::EnableTracing(size_t ring_capacity) {
  if (tracer_ == nullptr) {
    tracer_ = std::make_unique<Tracer>(sim_.get(), ring_capacity);
  }
  sim_->set_tracer(tracer_.get());
  return *tracer_;
}

CriticalPathProfiler& StorageStack::EnableProfiling(ProfilerOptions options) {
  Tracer& tracer = EnableTracing();
  if (profiler_ == nullptr) {
    profiler_ = std::make_unique<CriticalPathProfiler>(options);
  }
  profiler_->Attach(&tracer);
  return *profiler_;
}

Metrics& StorageStack::EnableMetrics() {
  EnableTracing();
  if (metrics_ == nullptr) {
    metrics_ = std::make_unique<Metrics>(sim_.get());
  }
  sim_->set_metrics(metrics_.get());
  return *metrics_;
}

void StorageStack::SetRecorder(BioRecorder recorder) {
  for (auto& cc : ccs_) {
    if (cc != nullptr) {
      cc->set_recorder(recorder);
    }
  }
  if (nvm_ != nullptr) {
    nvm_->set_recorder(recorder);
  }
  if (kv_ssd_ != nullptr) {
    kv_ssd_->set_recorder(recorder);
  }
  if (volume_ != nullptr) {
    // The volume records media events itself (with the member device
    // stamped); the block-layer recorder stays unset so events are not
    // double-counted.
    volume_->set_recorder(std::move(recorder));
  } else {
    blk_->set_recorder(std::move(recorder));
  }
}

CrashImage StorageStack::CaptureCrashImage() const {
  CrashImage image;
  image.devices.resize(ssds_.size());
  for (size_t d = 0; d < ssds_.size(); ++d) {
    image.devices[d].media = ssds_[d]->media().SnapshotDurable();
    image.devices[d].pmr.assign(controllers_[d]->pmr().bytes().begin(),
                                controllers_[d]->pmr().bytes().end());
  }
  if (nvm_ != nullptr) {
    image.nvm = nvm_->durable_image();
  }
  return image;
}

void StorageStack::Spawn(const std::string& name, std::function<void()> body, uint16_t queue) {
  sim_->Spawn(name, [this, queue, body = std::move(body)] {
    blk_->BindQueue(queue);
    body();
  });
}

void StorageStack::Run(std::function<void()> body, uint16_t queue) {
  Spawn("harness", std::move(body), queue);
  sim_->Run();
}

}  // namespace ccnvme

#include "src/harness/stack.h"

#include "src/common/logging.h"

namespace ccnvme {

StorageStack::StorageStack(const StackConfig& config) : config_(config) { Build(nullptr); }

StorageStack::StorageStack(const StackConfig& config, const CrashImage& image)
    : config_(config) {
  Build(&image);
}

StorageStack::~StorageStack() {
  if (sim_ != nullptr) {
    sim_->Shutdown();
  }
}

void StorageStack::Build(const CrashImage* image) {
  config_.ssd.capacity_bytes =
      std::max<uint64_t>(config_.ssd.capacity_bytes, config_.fs_total_blocks * kFsBlockSize);
  sim_ = std::make_unique<Simulator>();
  link_ = std::make_unique<PcieLink>(sim_.get(), PcieConfig{});
  ssd_ = std::make_unique<SsdModel>(sim_.get(), config_.ssd);

  NvmeControllerConfig ctrl_cfg;
  ctrl_cfg.num_io_queues = config_.num_queues;
  ctrl_cfg.queue_depth = config_.queue_depth;
  controller_ = std::make_unique<NvmeController>(sim_.get(), link_.get(), ssd_.get(), ctrl_cfg);

  if (image != nullptr) {
    ssd_->media().LoadDurable(image->media);
    // PMR contents survive power loss by design (§4.4).
    CCNVME_CHECK_EQ(image->pmr.size(), controller_->pmr().size());
    controller_->pmr().Write(0, image->pmr);
  }

  NvmeDriverConfig drv_cfg;
  drv_cfg.num_queues = config_.num_queues;
  drv_cfg.costs = config_.costs;
  nvme_ = std::make_unique<NvmeDriver>(sim_.get(), link_.get(), controller_.get(), drv_cfg);

  if (config_.enable_ccnvme) {
    CcNvmeOptions cc_opts = config_.cc_options;
    cc_opts.num_queues = config_.num_queues;
    cc_ = std::make_unique<CcNvmeDriver>(sim_.get(), link_.get(), controller_.get(),
                                         config_.costs, cc_opts);
  }
  blk_ = std::make_unique<BlockLayer>(sim_.get(), nvme_.get(), cc_.get(), config_.costs);
  fs_ = std::make_unique<ExtFs>(sim_.get(), blk_.get(), config_.costs, config_.fs);
}

Status StorageStack::MkfsAndMount() {
  Status result = OkStatus();
  Run([&] {
    result = ExtFs::Mkfs(sim_.get(), blk_.get(), config_.fs_total_blocks, config_.fs);
    if (result.ok()) {
      result = fs_->Mount();
    }
  });
  return result;
}

Status StorageStack::MountExisting() {
  Status result = OkStatus();
  Run([&] { result = fs_->Mount(); });
  return result;
}

Status StorageStack::Unmount() {
  Status result = OkStatus();
  Run([&] { result = fs_->Unmount(); });
  return result;
}

Tracer& StorageStack::EnableTracing(size_t ring_capacity) {
  if (tracer_ == nullptr) {
    tracer_ = std::make_unique<Tracer>(sim_.get(), ring_capacity);
  }
  sim_->set_tracer(tracer_.get());
  return *tracer_;
}

void StorageStack::SetRecorder(BioRecorder recorder) {
  if (cc_ != nullptr) {
    cc_->set_recorder(recorder);
  }
  blk_->set_recorder(std::move(recorder));
}

CrashImage StorageStack::CaptureCrashImage() const {
  CrashImage image;
  image.media = ssd_->media().SnapshotDurable();
  image.pmr.assign(controller_->pmr().bytes().begin(), controller_->pmr().bytes().end());
  return image;
}

void StorageStack::Spawn(const std::string& name, std::function<void()> body, uint16_t queue) {
  sim_->Spawn(name, [this, queue, body = std::move(body)] {
    blk_->BindQueue(queue);
    body();
  });
}

void StorageStack::Run(std::function<void()> body, uint16_t queue) {
  Spawn("harness", std::move(body), queue);
  sim_->Run();
}

}  // namespace ccnvme

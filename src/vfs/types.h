// Common on-disk and in-memory types for the file-system layer.
#ifndef SRC_VFS_TYPES_H_
#define SRC_VFS_TYPES_H_

#include <cstdint>

namespace ccnvme {

using InodeNum = uint32_t;
using BlockNo = uint64_t;  // logical block address, 4 KB units

inline constexpr uint32_t kFsBlockSize = 4096;
inline constexpr InodeNum kInvalidInode = 0;
inline constexpr InodeNum kRootInode = 1;

enum class FileType : uint8_t {
  kNone = 0,
  kRegular = 1,
  kDirectory = 2,
};

// Durability levels for the sync entry points (§5.1).
enum class SyncMode {
  kFsync,        // atomicity + durability
  kFatomic,      // atomicity only (returns at the ccNVMe doorbell)
  kFdataatomic,  // atomicity only, skips file metadata if size unchanged
};

}  // namespace ccnvme

#endif  // SRC_VFS_TYPES_H_

// On-disk and in-memory inode representation.
//
// The on-disk inode is a 256-byte little-endian record (16 per 4 KB block)
// with 48 direct block pointers and two single-indirect blocks, capping a
// file at (48 + 2*1024) * 4 KB = ~8.4 MB — plenty for the paper's workloads
// (mail files, WAL segments, SSTable chunks).
#ifndef SRC_VFS_INODE_H_
#define SRC_VFS_INODE_H_

#include <array>
#include <cstdint>
#include <set>

#include "src/common/bytes.h"
#include "src/sim/sync.h"
#include "src/vfs/types.h"

namespace ccnvme {

inline constexpr size_t kInodeSize = 256;
inline constexpr size_t kInodesPerBlock = kFsBlockSize / kInodeSize;  // 16
inline constexpr size_t kDirectBlocks = 48;
inline constexpr size_t kPtrsPerIndirect = kFsBlockSize / 4;  // 1024
inline constexpr uint64_t kMaxFileBlocks = kDirectBlocks + 2 * kPtrsPerIndirect;

struct DiskInode {
  FileType type = FileType::kNone;
  uint32_t nlink = 0;
  uint64_t size = 0;
  uint64_t mtime_ns = 0;
  std::array<uint32_t, kDirectBlocks> direct{};
  uint32_t indirect[2] = {0, 0};

  void Serialize(std::span<uint8_t> out) const {
    std::memset(out.data(), 0, kInodeSize);
    out[0] = static_cast<uint8_t>(type);
    PutU32(out, 4, nlink);
    PutU64(out, 8, size);
    PutU64(out, 16, mtime_ns);
    for (size_t i = 0; i < kDirectBlocks; ++i) {
      PutU32(out, 32 + 4 * i, direct[i]);
    }
    PutU32(out, 224, indirect[0]);
    PutU32(out, 228, indirect[1]);
  }

  static DiskInode Parse(std::span<const uint8_t> in) {
    DiskInode node;
    node.type = static_cast<FileType>(in[0]);
    node.nlink = GetU32(in, 4);
    node.size = GetU64(in, 8);
    node.mtime_ns = GetU64(in, 16);
    for (size_t i = 0; i < kDirectBlocks; ++i) {
      node.direct[i] = GetU32(in, 32 + 4 * i);
    }
    node.indirect[0] = GetU32(in, 224);
    node.indirect[1] = GetU32(in, 228);
    return node;
  }
};

// In-memory inode: the disk fields plus runtime state.
struct Inode {
  Inode(Simulator* sim, InodeNum number)
      : ino(number), lock(sim), sync_gate_mu(sim), sync_gate_cv(sim) {}

  InodeNum ino;
  DiskInode disk;
  bool dirty = false;  // disk fields differ from the inode table block
  SimMutex lock;

  // Cross-core fsync aggregation (group commit per inode): each fsync call
  // registers an epoch; a single leader runs the sync covering every epoch
  // registered so far, followers park on the gate until their epoch is
  // covered. The gate adds zero virtual time when uncontended, so a
  // single-context run is unchanged.
  SimMutex sync_gate_mu;
  SimCondVar sync_gate_cv;
  uint64_t fsync_requested = 0;  // epochs handed out to fsync callers
  uint64_t fsync_covered = 0;    // epochs made durable by finished leaders
  bool fsync_leader_active = false;
  uint64_t fsync_leader_commits = 0;  // leader syncs actually run (stats)

  // Blocks with dirty file data awaiting fsync.
  std::set<BlockNo> dirty_data;
  // Metadata blocks the inode's recent operations touched (its inode-table
  // block is always implied): directory blocks, bitmap blocks, indirect
  // blocks, the parent's inode-table block for freshly linked files.
  std::set<BlockNo> dirty_metadata;
  // For fdataatomic: skip the inode metadata if the size is unchanged.
  uint64_t size_at_last_sync = 0;
};
using InodePtr = std::shared_ptr<Inode>;

}  // namespace ccnvme

#endif  // SRC_VFS_INODE_H_

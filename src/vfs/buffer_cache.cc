#include "src/vfs/buffer_cache.h"

namespace ccnvme {

Result<BlockBufPtr> BufferCache::GetBlock(BlockNo block) {
  auto it = cache_.find(block);
  if (it != cache_.end()) {
    BlockBufPtr buf = it->second;
    if (!buf->uptodate) {
      // Another actor is reading this block right now; the reader holds the
      // page lock for the duration of the I/O.
      buf->lock.Lock();
      buf->lock.Unlock();
      if (!buf->uptodate) {
        return IoError("concurrent read of block " + std::to_string(block) + " failed");
      }
    }
    return buf;
  }
  // Publish the buffer *before* the read so concurrent missers share it —
  // the read I/O yields, and a private second copy would silently fork the
  // block's contents.
  auto buf = std::make_shared<BlockBuf>(sim_, block);
  cache_[block] = buf;
  buf->lock.Lock();
  Status st = blk_->ReadSync(block, 1, &buf->data);
  if (st.ok()) {
    buf->uptodate = true;
  } else {
    cache_.erase(block);
  }
  buf->lock.Unlock();
  if (!st.ok()) {
    return st;
  }
  return buf;
}

BlockBufPtr BufferCache::GetBlockNoRead(BlockNo block) {
  auto it = cache_.find(block);
  if (it != cache_.end()) {
    return it->second;
  }
  auto buf = std::make_shared<BlockBuf>(sim_, block);
  buf->uptodate = true;
  cache_[block] = buf;
  return buf;
}

void BufferCache::Forget(BlockNo block) { cache_.erase(block); }

Status BufferCache::WriteBlockSync(BlockNo block, uint32_t flags) {
  auto it = cache_.find(block);
  if (it == cache_.end()) {
    return NotFound("block " + std::to_string(block) + " not cached");
  }
  Status st = blk_->WriteSync(block, it->second->data, flags);
  if (st.ok()) {
    it->second->dirty = false;
  }
  return st;
}

}  // namespace ccnvme

// The journal interface the file system programs against.
//
// Implementations:
//   * Jbd2Journal (src/jbd2)  — classic Ext4 journaling; also the "Horae"
//     mode with ordering points removed, and effectively the comparison
//     baselines of §7.
//   * NullJournal (src/jbd2)  — Ext4-NJ: no journaling, in-place writes.
//   * MqJournal   (src/mqfs)  — MQFS multi-queue journaling over ccNVMe.
//
// The file system collects the blocks a sync point must persist into a
// SyncOp; the journal implementation owns ordering, atomicity and
// durability. This mirrors the division of labour between ext4 and jbd2.
#ifndef SRC_VFS_JOURNAL_H_
#define SRC_VFS_JOURNAL_H_

#include <vector>

#include "src/common/status.h"
#include "src/vfs/buffer_cache.h"
#include "src/vfs/types.h"

namespace ccnvme {

// Per-phase latency attribution for sync calls (Figure 14) comes from the
// cross-layer tracer: the FS and journal implementations emit kSync* spans
// (src/trace/trace_point.h) instead of filling an out-parameter struct.

struct SyncOp {
  InodeNum ino = kInvalidInode;
  // Metadata blocks to journal (buffer-cache blocks; content is read under
  // each block's page lock by the journal).
  std::vector<BlockBufPtr> metadata;
  // Data blocks written in place (ordered mode). In data-journaling mode
  // the FS puts data blocks into |metadata| instead.
  std::vector<BlockBufPtr> data;
};

class Journal {
 public:
  virtual ~Journal() = default;

  // Persists the op according to |mode|. Returns once the mode's guarantee
  // holds: full durability for kFsync, atomicity only for kFatomic /
  // kFdataatomic (supported only when SupportsAtomic()).
  virtual Status Sync(const SyncOp& op, SyncMode mode) = 0;

  // The FS freed |block| (previously journaled metadata, e.g. a directory
  // block) and may reuse it for data that bypasses the journal — the block
  // reuse problem of §5.4. The journal must ensure stale journal copies are
  // never replayed over the reused block.
  virtual void RevokeBlock(BlockNo block) = 0;

  // True if the FS must route this (data) block through the journal even in
  // metadata-journaling mode — MQFS's selective-revocation case 1 (§5.4)
  // regresses to data journaling for blocks whose stale copy is being
  // checkpointed concurrently.
  virtual bool ForceJournalData(BlockNo block) {
    (void)block;
    return false;
  }

  // Mount-time recovery: replay committed transactions into home locations.
  virtual Status Recover() = 0;

  // Graceful unmount: wait for in-flight transactions, checkpoint
  // everything, leave the journal empty.
  virtual Status Shutdown() = 0;

  virtual bool SupportsAtomic() const { return false; }
};

}  // namespace ccnvme

#endif  // SRC_VFS_JOURNAL_H_

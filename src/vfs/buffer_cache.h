// Buffer cache: the in-memory view of on-media blocks.
//
// Every metadata or data block a file system touches goes through here, so
// post-crash state is exactly what was pushed to the block device — the
// crash tests rely on that. Each block carries a page lock (the lock whose
// contention metadata shadow paging exists to avoid, §5.3) and journaling
// state used by JBD2/MQFS.
#ifndef SRC_VFS_BUFFER_CACHE_H_
#define SRC_VFS_BUFFER_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/block/block_layer.h"
#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/sim/sync.h"
#include "src/vfs/types.h"

namespace ccnvme {

// Journaling state of a cached block (JBD2's BH_* bits, simplified).
enum class JournalState : uint8_t {
  kClean = 0,
  kDirty,         // modified, not yet in any transaction
  kInTransaction, // part of a running/committing transaction
};

struct BlockBuf {
  explicit BlockBuf(Simulator* sim, BlockNo block)
      : block_no(block), data(kFsBlockSize, 0), lock(sim), wb_cv(sim) {}

  BlockNo block_no;
  Buffer data;
  bool uptodate = false;
  bool dirty = false;
  JournalState jstate = JournalState::kClean;
  // Page lock: serializes writers of this block.
  SimMutex lock;
  // Writeback latch: while set, the content is frozen (being written to the
  // journal or in place, or — in the no-shadow-paging ablation — pinned
  // until its transaction is durable). Writers wait on wb_cv under |lock|.
  bool writeback = false;
  SimCondVar wb_cv;

  // Marks the content frozen. Caller must ensure stability rules itself
  // (the simulator's single-runner invariant makes the flag flip atomic).
  void BeginWriteback() { writeback = true; }
  // Releases the latch; callable from any actor or completion context.
  void EndWriteback() {
    writeback = false;
    wb_cv.NotifyAll();
  }
};
using BlockBufPtr = std::shared_ptr<BlockBuf>;

class BufferCache {
 public:
  BufferCache(Simulator* sim, BlockLayer* blk) : sim_(sim), blk_(blk) {}

  // Returns the cached block, reading it from the device on a miss.
  Result<BlockBufPtr> GetBlock(BlockNo block);
  // Returns the cached block without reading (caller will overwrite it
  // fully, e.g. a freshly allocated block).
  BlockBufPtr GetBlockNoRead(BlockNo block);
  // Drops a block from the cache (used on free).
  void Forget(BlockNo block);
  // Writes one cached block in place synchronously.
  Status WriteBlockSync(BlockNo block, uint32_t flags = 0);
  // Drops everything (crash simulation / unmount).
  void Clear() { cache_.clear(); }

  size_t size() const { return cache_.size(); }
  BlockLayer* block_layer() { return blk_; }
  Simulator* sim() { return sim_; }

 private:
  Simulator* sim_;
  BlockLayer* blk_;
  std::unordered_map<BlockNo, BlockBufPtr> cache_;
};

}  // namespace ccnvme

#endif  // SRC_VFS_BUFFER_CACHE_H_
